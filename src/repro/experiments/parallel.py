"""Process-parallel execution: sweep fan-out and shard-parallel runs.

Two independent tiers, both built on ``ProcessPoolExecutor``:

* **Tier 1 -- sweep-level parallelism.**  Experiment grids (fig4 cells,
  E9 scale points, E10 read sweeps, multicache comparisons) are
  embarrassingly parallel: every cell is a pure function of its
  parameters and a seed.  :class:`ParallelRunner` maps a module-level
  cell function over picklable payloads and returns results in payload
  order, so a parallel sweep is *bit-for-bit identical* to the serial
  loop -- only wall clock changes.  Workloads are never pickled (a
  m = 10^6 trace is ~100 MB of arrays); instead each payload carries a
  :class:`WorkloadSpec` and the worker regenerates the trace from the
  seed, memoizing the most recent build per process.

* **Tier 2 -- shard-parallel single runs.**  In a ``"sharded"``
  :class:`~repro.network.topology.TopologyConfig` every source reports
  to exactly one cache, feedback flows cache -> own sources only, and no
  link, rng stream, or controller is shared across shards -- so the
  serial interleaved schedule factors exactly into one independent
  sub-simulation per cache.  :func:`run_cooperative_sharded` slices the
  workload per shard (:meth:`~repro.workloads.synthetic.Workload.shard`),
  runs each shard in a worker process advancing feedback-window by
  feedback-window, and merges integrals/counters back into the exact
  arithmetic the serial run performs (scatter + one ``np.sum``).  The
  merge is pinned bit-for-bit against the serial path in
  ``tests/test_parallel.py``; DESIGN.md Sec 11 gives the argument.

Everything a worker touches must be importable by reference: cell
functions live at module level, payloads are frozen dataclasses of
scalars and small numpy-free values.
"""

from __future__ import annotations

import importlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.divergence import DivergenceMetric
from repro.core.priority import AreaPriority, PriorityFunction
from repro.experiments.runner import RunSpec, make_context
from repro.metrics.report import RunResult
from repro.network.bandwidth import BandwidthProfile
from repro.network.topology import TopologyConfig
from repro.policies.cooperative import CooperativePolicy
from repro.sim.engine import gc_paused
from repro.workloads.synthetic import Workload


def default_workers() -> int:
    """Worker count matched to the machine (at least 1)."""
    return max(1, os.cpu_count() or 1)


# ----------------------------------------------------------------------
# Workload descriptors: regenerate in the worker, never pickle the trace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """A picklable recipe for a seeded workload.

    ``builder`` is a ``"module:callable"`` reference resolved in the
    worker; the callable receives a fresh ``np.random.default_rng(seed)``
    plus ``kwargs`` and must return a :class:`Workload`.  Two equal specs
    build bit-identical workloads in any process, which is what makes
    parallel sweeps reproducible: the ~1M-event trace arrays are
    regenerated (fast, vectorized) instead of serialized.
    """

    builder: str
    seed: int
    kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, builder: Callable[..., Workload], seed: int,
             **kwargs: Any) -> "WorkloadSpec":
        return cls(builder=f"{builder.__module__}:{builder.__qualname__}",
                   seed=int(seed),
                   kwargs=tuple(sorted(kwargs.items())))

    def build(self) -> Workload:
        module_name, _, func_name = self.builder.partition(":")
        fn = getattr(importlib.import_module(module_name), func_name)
        rng = np.random.default_rng(self.seed)
        return fn(rng=rng, **dict(self.kwargs))


#: Per-process memo of the most recently built workload.  Consecutive
#: cells in a sweep usually share one workload (several policies/replicas
#: per configuration); keeping exactly one bounds worker memory while
#: still collapsing the common repeat.
_workload_cache: dict[WorkloadSpec, Workload] = {}


def build_workload(spec: WorkloadSpec) -> Workload:
    """Build (or reuse) the workload for ``spec`` in this process."""
    workload = _workload_cache.get(spec)
    if workload is None:
        workload = spec.build()
        _workload_cache.clear()
        _workload_cache[spec] = workload
    return workload


def rng_probe(seed: int) -> tuple[int, list[float]]:
    """Worker-side probe for the seed-handoff tests.

    Returns the worker pid and the first draws of a freshly seeded
    generator: equal seeds must yield equal draws in *any* process
    (workers hand seeds around, never generator state).
    """
    rng = np.random.default_rng(seed)
    return os.getpid(), rng.random(4).tolist()


# ----------------------------------------------------------------------
# Tier 1: order-preserving process-pool map
# ----------------------------------------------------------------------
class ParallelRunner:
    """Order-preserving map of a cell function over payloads.

    ``workers <= 1`` (the default everywhere) degenerates to a plain
    in-process loop -- the exact pre-existing serial path.  With more
    workers, cells run in a ``ProcessPoolExecutor`` and results come back
    in payload order, so callers merge deterministically regardless of
    completion order.  ``fn`` must be picklable by reference (module
    level) and payloads must be picklable values.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)

    def map(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list:
        payloads = list(payloads)
        if self.workers <= 1 or len(payloads) <= 1:
            return [fn(payload) for payload in payloads]
        workers = min(self.workers, len(payloads))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, payloads))


# ----------------------------------------------------------------------
# Tier 2: shard-parallel cooperative runs
# ----------------------------------------------------------------------
def shard_sources(config: TopologyConfig, num_sources: int,
                  cache_id: int) -> list[int]:
    """Global source ids owned by ``cache_id``, ascending."""
    assignment = config.assignment_for(num_sources)
    return [j for j in range(num_sources) if cache_id in assignment[j]]


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to run a single shard."""

    workload: WorkloadSpec
    spec: RunSpec  #: the *global* run spec (topology = the sharded config)
    cache_id: int
    metric: DivergenceMetric
    cache_bandwidth: BandwidthProfile  #: aggregate cache-side profile
    source_bandwidths: tuple[BandwidthProfile, ...]  #: full global list
    priority_fn: PriorityFunction
    scheduling: str = "event"
    policy_kwargs: tuple[tuple[str, Any], ...] = ()


@dataclass
class ShardResult:
    """One shard's integrals, counters and telemetry, ready to merge."""

    cache_id: int
    sources: list[int]  #: global source ids, ascending
    objects: np.ndarray  #: global object indices, ascending
    duration: float
    weighted_integral: np.ndarray
    unweighted_integral: np.ndarray
    thresholds: list[float]  #: final T_j per source, global-ascending order
    refreshes_sent: int
    refreshes_applied: int
    feedback_sent: int
    cache_messages: int
    utilization: float
    queued: int
    queued_peak: int
    windows: int  #: feedback windows executed (barrier telemetry)


def _run_shard(task: ShardTask) -> ShardResult:
    """Run one shard as an independent single-cache sub-simulation.

    The sub-run advances feedback-window by feedback-window (successive
    ``run_until`` calls at window boundaries): each boundary is the
    designated exchange point where a future cross-shard rebalancer would
    synchronize.  With today's disjoint shards nothing crosses the
    boundary, so the windowed schedule is provably identical to one
    uninterrupted run (events at or before each boundary fire in the same
    ``(time, phase, seq)`` order either way).
    """
    with gc_paused():
        workload = build_workload(task.workload)
        config = task.spec.topology
        assert config is not None and config.kind == "sharded"
        sources = shard_sources(config, workload.num_sources, task.cache_id)
        sub = workload.shard(np.asarray(sources, dtype=np.int64))
        ops = workload.objects_per_source
        objects = (np.asarray(sources, dtype=np.int64)[:, None] * ops
                   + np.arange(ops, dtype=np.int64)[None, :]).reshape(-1)
        profile = config.cache_profiles(task.cache_bandwidth)[task.cache_id]
        sub_spec = replace(task.spec,
                           topology=TopologyConfig(kind="sharded",
                                                   num_caches=1))
        policy = CooperativePolicy(
            profile,
            [task.source_bandwidths[j] for j in sources],
            priority_fn=task.priority_fn,
            scheduling=task.scheduling,
            **dict(task.policy_kwargs))
        ctx = make_context(sub, task.metric, sub_spec)
        policy.attach(ctx)
        if task.spec.resample_interval is not None:
            ctx.collector.schedule_resample(ctx.sim,
                                            task.spec.resample_interval)
        end = task.spec.end_time
        window = policy._feedback_period_for(0, ctx)
        windows = 0
        if window is None or window <= 0:
            ctx.sim.run_until(end)
            windows = 1
        else:
            now = 0.0
            while now < end:
                now = min(now + window, end)
                ctx.sim.run_until(now)
                windows += 1
        ctx.collector.finalize(end)
        collector = ctx.collector
        link = policy.topology.cache_links[0]
        return ShardResult(
            cache_id=task.cache_id,
            sources=sources,
            objects=objects,
            duration=collector.duration,
            weighted_integral=collector._weighted_integral,
            unweighted_integral=collector._unweighted_integral,
            thresholds=[s.threshold.value for s in policy.sources],
            refreshes_sent=sum(s.refreshes_sent for s in policy.sources),
            refreshes_applied=policy.refreshes(),
            feedback_sent=policy.feedback_messages(),
            cache_messages=link.total_sent,
            utilization=link.utilization(),
            queued=link.queued,
            queued_peak=link.total_queued_peak,
            windows=windows,
        )


def merge_shard_results(shards: list[ShardResult], num_sources: int,
                        num_objects: int, metric_name: str) -> RunResult:
    """Reassemble per-shard results into the serial run's ``RunResult``.

    Bitwise-faithful to the serial arithmetic: per-object integrals are
    scattered back to their global positions and reduced by the same
    single ``np.sum`` the collector performs; the mean threshold is a
    left-to-right Python-float sum in ascending global source order,
    exactly the order ``CooperativePolicy.extras`` folds; counters are
    integer sums and maxes.
    """
    shards = sorted(shards, key=lambda s: s.cache_id)
    weighted = np.zeros(num_objects)
    unweighted = np.zeros(num_objects)
    thresholds = [0.0] * num_sources
    refreshes_sent = refreshes = feedback = messages = 0
    for shard in shards:
        weighted[shard.objects] = shard.weighted_integral
        unweighted[shard.objects] = shard.unweighted_integral
        for j, value in zip(shard.sources, shard.thresholds):
            thresholds[j] = value
        refreshes_sent += shard.refreshes_sent
        refreshes += shard.refreshes_applied
        feedback += shard.feedback_sent
        messages += shard.cache_messages
    duration = shards[0].duration
    weighted_mean = (float(weighted.sum()) / duration / num_objects
                     if duration > 0 else 0.0)
    unweighted_mean = (float(unweighted.sum()) / duration / num_objects
                       if duration > 0 else 0.0)
    extras: dict = {
        "mean_threshold": (sum(thresholds) / len(thresholds)
                           if thresholds else 0.0),
        "refreshes_sent": refreshes_sent,
        "refreshes_in_flight": refreshes_sent - refreshes,
        "cache_queue_peak": max((s.queued_peak for s in shards), default=0),
        "shard_windows": [s.windows for s in shards],
    }
    if len(shards) > 1:
        extras["topology"] = {
            "num_caches": len(shards),
            "cache_utilization": [s.utilization for s in shards],
            "cache_queued": [s.queued for s in shards],
            "cache_queued_peak": [s.queued_peak for s in shards],
        }
    return RunResult(
        policy="cooperative",
        metric=metric_name,
        num_sources=num_sources,
        num_objects=num_objects,
        duration=duration,
        weighted_divergence=weighted_mean,
        unweighted_divergence=unweighted_mean,
        refreshes=refreshes,
        feedback_messages=feedback,
        poll_messages=0,
        messages_total=messages,
        extras=extras,
    )


def run_cooperative_sharded(workload_spec: WorkloadSpec,
                            metric: DivergenceMetric,
                            spec: RunSpec,
                            cache_bandwidth: BandwidthProfile,
                            source_bandwidths: Sequence[BandwidthProfile],
                            priority_fn: PriorityFunction | None = None,
                            scheduling: str = "event",
                            workers: int = 1,
                            **policy_kwargs: Any) -> RunResult:
    """Run one cooperative sharded-topology simulation, shard-parallel.

    ``spec.topology`` must be a ``kind="sharded"`` configuration; each of
    its caches becomes one worker task advancing independently between
    feedback windows.  The merged result is bit-for-bit equal to the
    serial ``run_policy`` on the same workload/spec (pinned in
    ``tests/test_parallel.py``); ``workers=1`` runs the shards serially
    through the identical slicing/merge path.
    """
    config = spec.topology
    if config is None or config.kind != "sharded":
        raise ValueError(
            "shard-parallel execution needs a kind='sharded' topology, "
            f"got {config!r}")
    if priority_fn is None:
        priority_fn = AreaPriority()
    tasks = [
        ShardTask(workload=workload_spec, spec=spec, cache_id=k,
                  metric=metric, cache_bandwidth=cache_bandwidth,
                  source_bandwidths=tuple(source_bandwidths),
                  priority_fn=priority_fn, scheduling=scheduling,
                  policy_kwargs=tuple(sorted(policy_kwargs.items())))
        for k in range(config.num_caches)
    ]
    shards = ParallelRunner(workers).map(_run_shard, tasks)
    num_sources = len(source_bandwidths)
    workload_objects = sum(len(s.objects) for s in shards)
    return merge_shard_results(shards, num_sources, workload_objects,
                               metric.name)
