"""Network-condition experiment (E11): policies under fluctuating links.

The paper models bandwidth fluctuation only through the analytic ``mB``
sine knob; real links see diurnal load cycles, congestion bursts and
outages.  With the segment-indexed :class:`TraceBandwidth` fast path,
piecewise profiles run on the same event-driven machinery as constant
ones, so this experiment can ask the question the paper never could: how
do the five policies degrade when bandwidth itself fluctuates?

The matrix is {steady, diurnal, bursty, outage} (see
:func:`repro.workloads.bandwidth_traces.scenario_profile`) x
{star, sharded-4} x all five policies, on one seeded random-walk
workload.  Three structural verdicts are checked:

1. **steady trace == constant**: the flat trace is the control arm; the
   cooperative policy must reproduce the ``ConstantBandwidth`` run bit
   for bit (the split factors are dyadic, so even the sharded layout's
   per-link share arithmetic is exact either way).
2. **outage degrades every policy**: severing the links for 15% of the
   run can only raise divergence relative to steady.
3. **graceful degradation**: the feedback-driven cooperative policy's
   outage/steady divergence ratio stays at or below static uniform
   allocation's -- adaptivity re-concentrates the post-outage budget on
   the objects that drifted, uniform cannot.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.divergence import ValueDeviation
from repro.core.priority import AreaPriority
from repro.core.weights import StaticWeights
from repro.experiments.parallel import (
    ParallelRunner,
    WorkloadSpec,
    build_workload,
)
from repro.experiments.runner import RunSpec, run_policy
from repro.metrics.report import format_table
from repro.network.bandwidth import ConstantBandwidth
from repro.network.topology import TopologyConfig
from repro.policies.cache_driven import CGMPollingPolicy
from repro.policies.competitive import CompetitivePolicy
from repro.policies.cooperative import CooperativePolicy
from repro.policies.ideal import IdealCooperativePolicy
from repro.policies.uniform import UniformAllocationPolicy
from repro.workloads.bandwidth_traces import SCENARIOS, scenario_profile
from repro.workloads.synthetic import uniform_random_walk

POLICIES = ("cooperative", "uniform", "competitive", "cgm", "ideal")
TOPOLOGIES = ("star", "sharded-4")


@dataclass
class NetCondPoint:
    """All five policies at one (scenario, topology) grid cell."""

    scenario: str
    topology: str  #: "star" or "sharded-4"
    divergence: dict[str, float] = field(default_factory=dict)
    refreshes: dict[str, int] = field(default_factory=dict)
    #: cooperative divergence under plain ``ConstantBandwidth`` profiles;
    #: measured on steady cells only (the bitwise control arm).
    constant_control: float | None = None


@dataclass(frozen=True)
class NetCondCell:
    """One picklable (scenario, topology) cell of the E11 matrix."""

    scenario: str
    topology: str
    num_sources: int
    objects_per_source: int
    cache_bandwidth: float
    source_bandwidth: float
    warmup: float
    measure: float
    seed: int
    generator: str


def _profiles(cell: NetCondCell):
    """Fresh scenario-shaped profiles (per policy -- links consume them).

    The cache link carries the scenario's condition; each source link
    carries the same kind of condition seeded per source, so bursty
    cells get heterogeneous per-source congestion walks.
    """
    duration = cell.warmup + cell.measure
    cache = scenario_profile(cell.scenario, cell.cache_bandwidth,
                             duration, seed=cell.seed)
    sources = [scenario_profile(cell.scenario, cell.source_bandwidth,
                                duration, seed=cell.seed + 1 + j)
               for j in range(cell.num_sources)]
    return cache, sources


def _make_policy(name: str, cache_bw, source_bws, num_objects: int):
    if name == "cooperative":
        return CooperativePolicy(cache_bw, source_bws,
                                 priority_fn=AreaPriority())
    if name == "uniform":
        return UniformAllocationPolicy(cache_bw, source_bws)
    if name == "competitive":
        return CompetitivePolicy(
            cache_bw, source_bws, priority_fn=AreaPriority(),
            source_weights=StaticWeights.uniform(num_objects), psi=0.25)
    if name == "cgm":
        return CGMPollingPolicy(cache_bw, variant="cgm2")
    if name == "ideal":
        return IdealCooperativePolicy(cache_bw, AreaPriority(),
                                      source_bandwidths=source_bws)
    raise ValueError(f"unknown policy {name!r}")


def _run_netcond_cell(cell: NetCondCell) -> NetCondPoint:
    """Worker-side cell: one seeded workload through all five policies."""
    wspec = WorkloadSpec.make(
        uniform_random_walk, cell.seed, num_sources=cell.num_sources,
        objects_per_source=cell.objects_per_source,
        horizon=cell.warmup + cell.measure, generator=cell.generator)
    workload = build_workload(wspec)
    metric = ValueDeviation()
    topology = (None if cell.topology == "star"
                else TopologyConfig(kind="sharded", num_caches=4))
    spec = RunSpec(warmup=cell.warmup, measure=cell.measure,
                   seed=cell.seed, topology=topology)
    point = NetCondPoint(scenario=cell.scenario, topology=cell.topology)
    for name in POLICIES:
        cache_bw, source_bws = _profiles(cell)
        result = run_policy(
            workload, metric,
            _make_policy(name, cache_bw, source_bws,
                         workload.num_objects),
            spec)
        point.divergence[name] = result.weighted_divergence
        point.refreshes[name] = result.refreshes
    if cell.scenario == "steady":
        control = run_policy(
            workload, metric,
            _make_policy("cooperative",
                         ConstantBandwidth(cell.cache_bandwidth),
                         [ConstantBandwidth(cell.source_bandwidth)
                          for _ in range(cell.num_sources)],
                         workload.num_objects),
            spec)
        point.constant_control = control.weighted_divergence
    return point


def run_netcond(scenarios: tuple[str, ...] = SCENARIOS,
                topologies: tuple[str, ...] = TOPOLOGIES,
                num_sources: int = 16,
                objects_per_source: int = 8,
                cache_bandwidth: float = 20.0,
                source_bandwidth: float = 4.0,
                warmup: float = 100.0,
                measure: float = 400.0,
                seed: int = 0,
                generator: str = "vectorized",
                workers: int = 1) -> list[NetCondPoint]:
    """Run the E11 scenario x topology matrix on one seeded workload.

    The workload is identical across the matrix; only the bandwidth
    traces change, so divergence differences are pure network-condition
    effects.  ``workers`` > 1 fans the cells over a process pool with
    bit-identical results (every worker regenerates the same seeded
    workload and traces).
    """
    for topology in topologies:
        if topology not in TOPOLOGIES:
            raise ValueError(f"unknown topology {topology!r}")
    cells = [NetCondCell(
        scenario=scenario, topology=topology, num_sources=num_sources,
        objects_per_source=objects_per_source,
        cache_bandwidth=cache_bandwidth,
        source_bandwidth=source_bandwidth, warmup=warmup,
        measure=measure, seed=seed, generator=generator)
        for scenario in scenarios for topology in topologies]
    return ParallelRunner(workers).map(_run_netcond_cell, cells)


def run_netcond_scale(num_sources: int = 100_000,
                      update_rate: float = 0.002,
                      cache_bandwidth: float = 8.0,
                      source_bandwidth: float = 1.0,
                      warmup: float = 100.0,
                      measure: float = 500.0,
                      seed: int = 0,
                      num_breakpoints: int = 1000,
                      generator: str = "vectorized"):
    """E9-style sparse run, trace-driven vs constant bandwidth.

    One m-source sparse workload, two event-mode cooperative runs: plain
    ``ConstantBandwidth`` links, then a ``num_breakpoints``-segment
    diurnal :class:`TraceBandwidth` with the same mean on the cache link
    and one *shared* diurnal trace instance across every source link
    (the trace is read-only during a run -- its only mutable state is a
    segment-index lookup cache -- so sharing keeps the m = 10^5 point at
    one cumulative array instead of 10^5).  Returns the two
    :class:`~repro.experiments.scale.ScalePoint`\\ s, labeled via their
    ``bandwidth`` field so the BENCH regression checker keys them apart;
    the trace point's wall clock is the O(log segments) acceptance
    number (must stay within 2x the constant wall).
    """
    from repro.experiments.scale import ScalePoint, sparse_workload
    from repro.workloads.bandwidth_traces import diurnal_trace

    duration = warmup + measure
    rng = np.random.default_rng(seed)
    gen_start = time.perf_counter()
    workload = sparse_workload(num_sources, duration, rng,
                               update_rate=update_rate,
                               generator=generator)
    gen_seconds = time.perf_counter() - gen_start
    metric = ValueDeviation()
    spec = RunSpec(warmup=warmup, measure=measure, seed=seed)
    points = []
    for bandwidth in ("steady", f"diurnal-{num_breakpoints}"):
        if bandwidth == "steady":
            cache_bw = ConstantBandwidth(cache_bandwidth)
            source_bws = [ConstantBandwidth(source_bandwidth)
                          for _ in range(num_sources)]
        else:
            cache_bw = diurnal_trace(cache_bandwidth, duration,
                                     num_breakpoints)
            shared = diurnal_trace(source_bandwidth, duration,
                                   num_breakpoints)
            source_bws = [shared] * num_sources
        policy = CooperativePolicy(cache_bw, source_bws,
                                   priority_fn=AreaPriority())
        start = time.perf_counter()
        result = run_policy(workload, metric, policy, spec)
        wall = time.perf_counter() - start
        points.append(ScalePoint(
            num_sources=num_sources, scheduling="event",
            wall_seconds=wall,
            weighted_divergence=result.weighted_divergence,
            refreshes=result.refreshes,
            feedback_messages=result.feedback_messages,
            gen_seconds=gen_seconds, generator=generator,
            bandwidth=bandwidth))
        del policy, result
        gc.collect()
    return points


# ----------------------------------------------------------------------
# Structural verdicts
# ----------------------------------------------------------------------
def _by_cell(points: list[NetCondPoint]) -> dict[tuple[str, str],
                                                 NetCondPoint]:
    return {(p.scenario, p.topology): p for p in points}


def steady_matches_constant(points: list[NetCondPoint]) -> bool:
    """True when every steady trace reproduced its constant control arm
    bit for bit (the fast path changed nothing on flat profiles)."""
    steady = [p for p in points if p.scenario == "steady"]
    return bool(steady) and all(
        p.constant_control is not None
        and p.divergence["cooperative"] == p.constant_control
        for p in steady)


def outage_degrades(points: list[NetCondPoint]) -> bool:
    """True when the outage scenario's divergence is at least the steady
    scenario's for every policy on every topology both were run on."""
    cells = _by_cell(points)
    checked = 0
    for (scenario, topology), out in cells.items():
        if scenario != "outage":
            continue
        steady = cells.get(("steady", topology))
        if steady is None:
            continue
        checked += 1
        for name in out.divergence:
            if out.divergence[name] < steady.divergence.get(name, 0.0):
                return False
    return checked > 0


def _degradation_ratio(outage: float, steady: float) -> float:
    """Outage/steady divergence ratio, defined at a zero baseline (a
    tiny matrix can drive steady divergence to exactly 0)."""
    if steady > 0.0:
        return outage / steady
    return float("inf") if outage > 0.0 else 1.0


def graceful_degradation(points: list[NetCondPoint]) -> bool:
    """True when cooperative's outage/steady divergence ratio is at most
    uniform allocation's on every topology (adaptive feedback recovers
    from the blackout at least as gracefully as the static split)."""
    cells = _by_cell(points)
    checked = 0
    for (scenario, topology), out in cells.items():
        if scenario != "outage":
            continue
        steady = cells.get(("steady", topology))
        if steady is None:
            continue
        coop = _degradation_ratio(out.divergence["cooperative"],
                                  steady.divergence["cooperative"])
        unif = _degradation_ratio(out.divergence["uniform"],
                                  steady.divergence["uniform"])
        checked += 1
        if coop > unif:
            return False
    return checked > 0


def render_netcond(points: list[NetCondPoint], title: str) -> str:
    """The matrix as a table plus the three structural verdict lines."""
    rows = [
        [p.scenario, p.topology]
        + [p.divergence.get(name, float("nan")) for name in POLICIES]
        for p in points
    ]
    table = format_table(["scenario", "layout", *POLICIES], rows,
                         title=title)
    verdicts = [
        ("steady trace == constant bandwidth (cooperative, bitwise): "
         + ("yes" if steady_matches_constant(points)
            else "WARNING: diverged")),
        ("outage degrades every policy vs steady: "
         + ("yes" if outage_degrades(points) else "WARNING: violated")),
        ("cooperative degrades no worse than uniform under outage: "
         + ("yes" if graceful_degradation(points)
            else "WARNING: violated")),
    ]
    return "\n".join([table, *verdicts])
