"""Cho & Garcia-Molina cache-driven baseline machinery (Figure 6)."""

from repro.cgm.allocation import (
    expected_total_staleness,
    frequencies_for_multiplier,
    solve_refresh_frequencies,
)
from repro.cgm.estimators import (
    BinaryChangeEstimator,
    LastUpdateAgeEstimator,
    RateEstimator,
)
from repro.cgm.freshness import (
    freshness,
    marginal_benefit,
    phi,
    phi_inverse,
    staleness,
    staleness_at_frequency,
)
from repro.cgm.poller import PollScheduler

__all__ = [
    "BinaryChangeEstimator",
    "LastUpdateAgeEstimator",
    "PollScheduler",
    "RateEstimator",
    "expected_total_staleness",
    "frequencies_for_multiplier",
    "freshness",
    "marginal_benefit",
    "phi",
    "phi_inverse",
    "solve_refresh_frequencies",
    "staleness",
    "staleness_at_frequency",
]
