"""Freshness mathematics for the CGM baseline (Cho & Garcia-Molina 2000).

For an object updated by a Poisson process with rate ``lambda`` and
refreshed deterministically every ``I`` time units, the time-averaged
freshness is::

    F(lambda, I) = (1 - e^{-lambda I}) / (lambda I)

and staleness is ``1 - F``.  The marginal-benefit function used by the
Lagrange allocation (see :mod:`repro.cgm.allocation`) is::

    g(lambda, I) = dS/dI * I^2 = (1 - e^{-x}(1 + x)) / lambda,  x = lambda I

``g`` is strictly increasing in ``I`` from 0 to ``1/lambda``, which is the
analytic root of CGM's famous result that the hottest objects should not be
refreshed at all: once the Lagrange multiplier exceeds ``1/lambda_i``, no
finite refresh interval can pay for itself.

``phi(x) = 1 - e^{-x}(1 + x)`` is the Erlang-2 CDF; the allocation solver
inverts it with vectorized bisection.
"""

from __future__ import annotations

import numpy as np


def freshness(rate: float | np.ndarray,
              interval: float | np.ndarray) -> float | np.ndarray:
    """Time-averaged freshness ``F(lambda, I)``; handles the x -> 0 limit."""
    rate = np.asarray(rate, dtype=float)
    interval = np.asarray(interval, dtype=float)
    with np.errstate(invalid="ignore"):
        x = rate * interval  # 0 * inf is resolved by the masks below
    with np.errstate(divide="ignore", invalid="ignore"):
        value = np.where(x > 1e-12, -np.expm1(-x) / np.where(x > 0, x, 1.0),
                         1.0 - x / 2.0)
    value = np.where(np.isinf(interval), 0.0, value)
    value = np.where(rate == 0.0, 1.0, value)
    if value.ndim == 0:
        return float(value)
    return value


def staleness(rate: float | np.ndarray,
              interval: float | np.ndarray) -> float | np.ndarray:
    """Time-averaged staleness ``1 - F(lambda, I)``."""
    return 1.0 - freshness(rate, interval)


def staleness_at_frequency(rate: float | np.ndarray,
                           frequency: float | np.ndarray
                           ) -> float | np.ndarray:
    """Staleness when refreshing ``frequency`` times per unit time.

    ``frequency = 0`` means never refreshed: staleness 1 for any object
    that ever changes, 0 for a frozen object.
    """
    rate = np.asarray(rate, dtype=float)
    frequency = np.asarray(frequency, dtype=float)
    with np.errstate(divide="ignore"):
        interval = np.where(frequency > 0.0, 1.0 / np.where(
            frequency > 0, frequency, 1.0), np.inf)
    return staleness(rate, interval)


def phi(x: np.ndarray) -> np.ndarray:
    """``phi(x) = 1 - e^{-x}(1 + x)`` (Erlang-2 CDF), increasing 0 -> 1."""
    x = np.asarray(x, dtype=float)
    return 1.0 - np.exp(-x) * (1.0 + x)


def phi_inverse(c: np.ndarray, tol: float = 1e-12,
                max_iter: int = 200) -> np.ndarray:
    """Invert ``phi`` by vectorized bisection; ``c`` must be in [0, 1)."""
    c = np.asarray(c, dtype=float)
    if ((c < 0) | (c >= 1)).any():
        raise ValueError("phi_inverse arguments must lie in [0, 1)")
    lo = np.zeros_like(c)
    hi = np.ones_like(c)
    # Grow the bracket until phi(hi) >= c everywhere.
    for _ in range(200):
        mask = phi(hi) < c
        if not mask.any():
            break
        hi[mask] *= 2.0
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        below = phi(mid) < c
        lo = np.where(below, mid, lo)
        hi = np.where(below, hi, mid)
        if float(np.max(hi - lo)) < tol:
            break
    return 0.5 * (lo + hi)


def marginal_benefit(rate: np.ndarray, interval: np.ndarray) -> np.ndarray:
    """``g(lambda, I) = phi(lambda I) / lambda`` (see module docstring)."""
    rate = np.asarray(rate, dtype=float)
    interval = np.asarray(interval, dtype=float)
    with np.errstate(invalid="ignore"):
        out = np.where(rate > 0.0,
                       phi(rate * interval) / np.where(rate > 0, rate, 1.0),
                       0.0)
    return out
