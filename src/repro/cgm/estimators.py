"""Update-rate estimators for the cache-driven baselines (CGM00a).

The polling cache never sees updates directly; it must estimate each
object's Poisson rate ``lambda_i`` from what polls reveal.  Two levels of
visibility are considered in the paper's Figure 6:

* **CGM1** -- the source tracks the time of the most recent update, so each
  poll reveals the *age* ``a = t_poll - t_last_update`` (or that nothing
  changed since the previous poll).  For a Poisson process the time looking
  backwards from a poll to the last arrival is ``Exp(lambda)`` censored at
  the poll interval, giving the censored-exponential MLE::

      lambda_hat = (#polls that saw a change)
                   / (sum of observed ages + sum of unchanged poll intervals)

  implemented by :class:`LastUpdateAgeEstimator` (with a +0.5 smoothing
  count so that a streak of unchanged polls decays the estimate instead of
  zeroing it, which would starve the object of polls forever).

* **CGM2** -- polls only reveal the boolean "changed since last poll?".
  With ``k`` polls at (average) interval ``I`` and ``x`` observed changes,
  the naive estimator ``-log(1 - x/k) / I`` diverges when ``x = k``; we use
  the bias-reduced estimator proposed by Cho & Garcia-Molina::

      lambda_hat = -log((k - x + 0.5) / (k + 0.5)) / I_mean

  implemented by :class:`BinaryChangeEstimator`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class RateEstimator(ABC):
    """Per-object estimator of a Poisson update rate."""

    @abstractmethod
    def observe_poll(self, poll_time: float, changed: bool,
                     last_update_time: float | None,
                     interval: float) -> None:
        """Record one poll outcome.

        ``interval`` is the time since the previous poll (or since tracking
        began).  ``last_update_time`` is only available to CGM1.
        """

    @abstractmethod
    def estimate(self) -> float | None:
        """Current rate estimate, or ``None`` before any evidence."""

    @property
    @abstractmethod
    def observations(self) -> int:
        """Number of polls folded in."""


class LastUpdateAgeEstimator(RateEstimator):
    """CGM1: censored-exponential MLE from last-update ages."""

    __slots__ = ("_changed", "_exposure", "smoothing")

    def __init__(self, smoothing: float = 0.5) -> None:
        self._changed = 0
        self._exposure = 0.0
        self.smoothing = smoothing

    def observe_poll(self, poll_time: float, changed: bool,
                     last_update_time: float | None,
                     interval: float) -> None:
        if interval <= 0:
            return
        if changed and last_update_time is not None:
            age = poll_time - last_update_time
            # The age is censored at the window; clamp against clock skew.
            self._exposure += min(max(age, 0.0), interval)
            self._changed += 1
        else:
            self._exposure += interval

    def estimate(self) -> float | None:
        if self._exposure <= 0.0:
            return None
        return (self._changed + self.smoothing) / self._exposure

    @property
    def observations(self) -> int:
        return self._changed


class BinaryChangeEstimator(RateEstimator):
    """CGM2: bias-reduced estimator from boolean change observations."""

    __slots__ = ("_polls", "_changed", "_interval_sum")

    def __init__(self) -> None:
        self._polls = 0
        self._changed = 0
        self._interval_sum = 0.0

    def observe_poll(self, poll_time: float, changed: bool,
                     last_update_time: float | None,
                     interval: float) -> None:
        if interval <= 0:
            return
        self._polls += 1
        self._interval_sum += interval
        if changed:
            self._changed += 1

    def estimate(self) -> float | None:
        if self._polls == 0:
            return None
        mean_interval = self._interval_sum / self._polls
        if mean_interval <= 0:
            return None
        # With zero observed changes the published estimator collapses to
        # exactly 0, which would starve the object of polls forever; treat
        # the evidence as "at most half a change" instead, which decays
        # toward 0 as quiet polls accumulate but never reaches it.
        changed = max(self._changed, 0.5)
        ratio = (self._polls - changed + 0.5) / (self._polls + 0.5)
        return -math.log(ratio) / mean_interval

    @property
    def observations(self) -> int:
        return self._polls
