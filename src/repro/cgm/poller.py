"""Poll scheduling for the cache-driven baselines.

Given a frequency allocation, each object is polled periodically at its
frequency with a random initial phase (so polls spread out instead of
thundering at t=0).  The scheduler keeps a due-time heap; the policy pops
due objects each tick and reschedules them after a successful poll.
"""

from __future__ import annotations

import heapq

import numpy as np


class PollScheduler:
    """Due-time heap over objects with positive poll frequencies.

    Heap entries carry the allocation epoch they were scheduled under;
    adopting a new allocation bumps the epoch, so stale entries from the
    previous allocation are discarded lazily when popped.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int]] = []  # (due, epoch, idx)
        self._frequencies: np.ndarray | None = None
        self._epoch = 0

    @property
    def frequencies(self) -> np.ndarray | None:
        return self._frequencies

    def set_frequencies(self, freqs: np.ndarray, now: float,
                        rng: np.random.Generator) -> None:
        """Adopt a new allocation; each object gets a random initial phase.

        Entries from earlier allocations become stale (lazy invalidation).
        """
        freqs = np.asarray(freqs, dtype=float)
        if (freqs < 0).any():
            raise ValueError("frequencies must be nonnegative")
        self._frequencies = freqs
        self._epoch += 1
        for index in np.nonzero(freqs > 0)[0]:
            period = 1.0 / freqs[index]
            due = now + float(rng.uniform(0.0, period))
            self._push(int(index), due)

    def _push(self, index: int, due: float) -> None:
        heapq.heappush(self._heap, (due, self._epoch, index))

    def due(self, now: float) -> list[int]:
        """Pop every object whose poll time has arrived."""
        ready: list[int] = []
        while self._heap and self._heap[0][0] <= now:
            _, epoch, index = heapq.heappop(self._heap)
            if epoch != self._epoch:
                continue  # superseded by a newer allocation
            ready.append(index)
        return ready

    def reschedule(self, index: int, now: float,
                   delay: float | None = None) -> None:
        """Schedule the next poll of ``index``.

        ``delay`` overrides the period (used to retry under congestion).
        """
        if self._frequencies is None:
            raise RuntimeError("set_frequencies must be called first")
        if delay is None:
            frequency = float(self._frequencies[index])
            if frequency <= 0:
                return
            delay = 1.0 / frequency
        self._push(index, now + delay)

    def pending(self) -> int:
        """Number of live scheduled polls."""
        return sum(1 for _, epoch, _ in self._heap
                   if epoch == self._epoch)
