"""CGM refresh-frequency allocation by Lagrange multipliers.

Cho & Garcia-Molina's freshness-optimal policy ("Synchronizing a database to
improve freshness", SIGMOD 2000) chooses per-object refresh frequencies
``f_i`` minimizing total expected staleness subject to a total refresh
budget ``sum f_i = B``.  The stationarity condition is::

    w_i * g(lambda_i, 1/f_i) = mu        for every refreshed object i
    f_i = 0                              whenever mu >= w_i / lambda_i

with ``g`` from :mod:`repro.cgm.freshness` and ``mu`` the multiplier.  The
paper under reproduction notes the multiplier "was shown not to be solvable
mathematically [analytically]" and that the authors tuned it by repeated
runs; here we simply solve the one-dimensional root problem numerically
(scipy ``brentq`` on the monotone budget residual), which finds the same
optimum without manual tuning.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.cgm.freshness import phi_inverse, staleness_at_frequency


def frequencies_for_multiplier(rates: np.ndarray, mu: float,
                               weights: np.ndarray | None = None
                               ) -> np.ndarray:
    """Optimal frequencies for a given Lagrange multiplier ``mu``.

    Monotonically nonincreasing in ``mu`` componentwise.
    """
    rates = np.asarray(rates, dtype=float)
    if weights is None:
        weights = np.ones_like(rates)
    else:
        weights = np.asarray(weights, dtype=float)
    if mu <= 0:
        raise ValueError(f"mu must be > 0, got {mu}")
    freqs = np.zeros_like(rates)
    with np.errstate(divide="ignore"):
        cutoff = weights / np.where(rates > 0, rates, np.inf)
    active = (rates > 0) & (weights > 0) & (mu < cutoff)
    if active.any():
        c = mu * rates[active] / weights[active]
        x = phi_inverse(c)
        # x = lambda * I, so f = 1/I = lambda / x.
        freqs[active] = rates[active] / x
    return freqs


def solve_refresh_frequencies(rates: np.ndarray, budget: float,
                              weights: np.ndarray | None = None,
                              tol: float = 1e-13) -> np.ndarray:
    """Frequencies ``f_i >= 0`` with ``sum f_i = budget`` minimizing staleness.

    Objects with ``rate == 0`` never need refreshing and get ``f = 0``.
    A zero or negative budget returns all-zero frequencies.
    """
    rates = np.asarray(rates, dtype=float)
    if (rates < 0).any():
        raise ValueError("rates must be nonnegative")
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if (weights < 0).any():
            raise ValueError("weights must be nonnegative")
    if budget <= 0 or not (rates > 0).any():
        return np.zeros_like(rates)

    def residual(log_mu: float) -> float:
        freqs = frequencies_for_multiplier(rates, float(np.exp(log_mu)),
                                           weights)
        return float(freqs.sum()) - budget

    # Bracket the root in log space: small mu -> huge total frequency,
    # mu at or above max(w/lambda) -> zero total frequency (so the upper
    # bracket sits strictly above the cutoff, where the residual is
    # exactly -budget regardless of how small the budget is).
    w = np.ones_like(rates) if weights is None else weights
    positive = (rates > 0) & (w > 0)
    hi = float(np.log(np.max(w[positive] / rates[positive]))) + 0.1
    lo = hi - 1.0
    for _ in range(200):
        if residual(lo) > 0:
            break
        lo -= 2.0
    else:  # pragma: no cover - pathological budget
        raise RuntimeError("could not bracket the allocation multiplier")
    log_mu = optimize.brentq(residual, lo, hi, xtol=tol)
    freqs = frequencies_for_multiplier(rates, float(np.exp(log_mu)),
                                       weights)
    # Deep in the starved regime the root lies in phi's exponential tail,
    # where float resolution on log(mu) limits budget accuracy to ~1e-4;
    # a final proportional rescale pins the budget exactly at negligible
    # cost to optimality.
    total = float(freqs.sum())
    if total > 0.0:
        freqs *= budget / total
        return freqs
    # Degenerate regime: the budget is so small relative to the update
    # rates that the optimal multiplier is within float rounding of the
    # cutoff and every frequency underflowed to zero.  In the budget -> 0
    # limit the whole budget belongs to the object(s) with the highest
    # marginal value w/lambda.
    with np.errstate(divide="ignore"):
        cutoff = np.where(positive, w / np.where(positive, rates, 1.0),
                          -np.inf)
    best = cutoff == cutoff.max()
    freqs = np.zeros_like(rates)
    freqs[best] = budget / best.sum()
    return freqs


def expected_total_staleness(rates: np.ndarray, freqs: np.ndarray,
                             weights: np.ndarray | None = None) -> float:
    """Predicted total (weighted) staleness under a frequency allocation."""
    rates = np.asarray(rates, dtype=float)
    freqs = np.asarray(freqs, dtype=float)
    staleness = staleness_at_frequency(rates, freqs)
    if weights is not None:
        staleness = staleness * np.asarray(weights, dtype=float)
    return float(np.sum(staleness))
