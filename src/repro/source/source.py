"""The cooperating data source (paper Secs 5 and 8).

A :class:`SourceNode` owns a contiguous range of objects, watches their
refresh priorities through a :class:`PriorityMonitor`, and implements the
source half of the threshold-setting protocol:

* whenever source-side bandwidth allows, refresh the highest-priority
  object *if* its priority is at least the local threshold ``T_j``;
* raise ``T_j`` by ``alpha * gamma`` per refresh sent;
* on positive feedback, lower ``T_j`` by ``omega`` unless sending at full
  source-side capacity (footnote 3);
* piggyback the current ``T_j`` on every refresh message so the cache can
  target feedback at the sources with the highest thresholds.
"""

from __future__ import annotations

from repro.core.objects import DataObject
from repro.core.threshold import ThresholdController
from repro.network.messages import FeedbackMessage, Message, RefreshMessage
from repro.network.topology import Topology
from repro.source.monitor import PriorityMonitor


class SourceNode:
    """One cooperating source; topology-agnostic.

    The source does not care how many caches exist: the topology routes
    its upstream refreshes to the right cache link(s), and downstream
    feedback arrives tagged with the ``cache_id`` it came from (recorded in
    ``feedback_by_cache`` for diagnostics).
    """

    __slots__ = ("source_id", "objects", "monitor", "threshold",
                 "topology", "refreshes_sent", "feedback_received",
                 "feedback_by_cache", "send_hooks", "_by_index")

    def __init__(self, source_id: int, objects: list[DataObject],
                 monitor: PriorityMonitor,
                 threshold: ThresholdController,
                 topology: Topology) -> None:
        self.source_id = source_id
        self.objects = objects
        self.monitor = monitor
        self.threshold = threshold
        self.topology = topology
        self.refreshes_sent = 0
        self.feedback_received = 0
        self.feedback_by_cache: dict[int, int] = {}
        #: callbacks ``hook(obj, now, threshold_driven)`` fired per send
        self.send_hooks: list = []
        self._by_index = {obj.index: obj for obj in objects}

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def on_update(self, obj: DataObject, now: float) -> bool:
        """An update was applied to one of this source's objects.

        The paper's sources "decide whether to refresh immediately after
        each update" (Sec 3.4), so after repositioning the object in the
        priority queue we immediately try to drain.  Returns True when the
        drain was cut short by bandwidth (the source needs a wakeup at the
        next refill to finish).
        """
        self.monitor.on_update(obj, now)
        return self.drain(now)

    def on_tick(self, now: float) -> None:
        """Per-tick refresh opportunity (SOURCES phase, tick-scan mode)."""
        self.monitor.on_tick(self.objects, now)
        self.drain(now)

    def on_wake(self, now: float) -> bool:
        """Deadline-driven refresh opportunity (event scheduling).

        Performs exactly what :meth:`on_tick` would have at this tick --
        the monitor touches only its due objects -- and reports whether
        the source still has over-threshold work blocked on bandwidth.
        """
        self.monitor.on_wake(self, now)
        return self.drain(now)

    def on_message(self, message: Message, now: float) -> bool:
        """Downstream message from a cache.  Returns the blocked status
        of any drain this message triggered."""
        if isinstance(message, FeedbackMessage):
            return self.on_feedback(now, cache_id=message.cache_id)
        return False

    def on_feedback(self, now: float, cache_id: int = 0) -> bool:
        """Positive feedback: lower the threshold and use it right away."""
        self.feedback_received += 1
        self.feedback_by_cache[cache_id] = (
            self.feedback_by_cache.get(cache_id, 0) + 1)
        at_capacity = self.topology.source_at_capacity(self.source_id)
        self.threshold.on_feedback(now, at_capacity=at_capacity)
        return self.drain(now)

    # ------------------------------------------------------------------
    # Refresh scheduling
    # ------------------------------------------------------------------
    def drain(self, now: float) -> bool:
        """Send refreshes while priority >= threshold and bandwidth allows.

        Returns True when an over-threshold object could not be sent for
        lack of source-side bandwidth -- the caller should schedule a
        wakeup at the next credit refill; False when the queue is exhausted
        or the top priority fell below the threshold (only a new update,
        feedback or sample can change that, each of which re-drains).
        """
        self.threshold.maybe_decay(now)
        tracker = self.monitor.tracker
        while True:
            top = tracker.peek()
            if top is None:
                return False
            index, priority = top
            if priority < self.threshold.value:
                return False
            obj = self._by_index[index]
            if not self._send_refresh(obj, now):
                return True  # out of source-side bandwidth this tick

    def _send_refresh(self, obj: DataObject, now: float,
                      adjust_threshold: bool = True) -> bool:
        """Send one refresh message; ``adjust_threshold=False`` is used by
        source-priority sends in competitive mode (Sec 7), which are paced
        by their own allocation rather than the threshold protocol."""
        message = RefreshMessage(
            source_id=self.source_id,
            sent_at=now,
            object_index=obj.index,
            value=obj.value,
            threshold=self.threshold.value,
            update_count=obj.update_count,
        )
        if not self.topology.send_upstream(message):
            return False
        obj.mark_sent(now)
        self.monitor.on_refresh_sent(obj, now)
        if adjust_threshold:
            self.threshold.on_refresh(now)
        self.refreshes_sent += 1
        for hook in self.send_hooks:
            hook(obj, now, adjust_threshold)
        return True
