"""Source-side machinery: cooperating sources, monitors, rate estimation."""

from repro.source.batching import BatchingSource
from repro.source.monitor import (
    PriorityMonitor,
    SamplingMonitor,
    TriggerMonitor,
)
from repro.source.rates import EstimatedRatePriority, OnlineRateEstimator
from repro.source.source import SourceNode

__all__ = [
    "BatchingSource",
    "EstimatedRatePriority",
    "OnlineRateEstimator",
    "PriorityMonitor",
    "SamplingMonitor",
    "SourceNode",
    "TriggerMonitor",
]
