"""Source-side update-rate measurement (paper Sec 8.1).

The Poisson special-case priorities need each object's rate ``lambda_i``.
The paper describes two source-side options:

* "The number of updates divided by the time elapsed since the last
  refresh gives an estimate for the Poisson parameter" -- cheap but noisy
  right after a refresh;
* "Alternatively, the parameter may be monitored over a longer period of
  time" -- the Sec 10.1 future-work trade of adaptiveness for more
  reliable predictions.

:class:`OnlineRateEstimator` implements both as one mechanism: an
exponentially weighted average of observed inter-update gaps with a
configurable memory horizon.  A short horizon behaves like the
per-refresh-epoch estimate; a long horizon approximates the long-run rate.

:class:`EstimatedRatePriority` wraps any rate-aware priority function and
substitutes the online estimate for the oracle ``obj.rate``, so the same
scheduling code runs with measured rather than assumed knowledge.
"""

from __future__ import annotations

from repro.core.objects import DataObject
from repro.core.priority import PriorityFunction


class OnlineRateEstimator:
    """EWMA estimate of per-object Poisson rates from observed updates.

    Parameters
    ----------
    horizon:
        Effective memory in *update gaps*: the EWMA weight of each new
        inter-update gap is ``1 / horizon``.  ``horizon = 1`` uses only
        the most recent gap; large horizons approach the long-run mean.
    initial_rate:
        Estimate reported before any gap has been observed.
    """

    def __init__(self, horizon: float = 10.0,
                 initial_rate: float = 0.1) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if initial_rate <= 0:
            raise ValueError(
                f"initial rate must be > 0, got {initial_rate}")
        self.horizon = float(horizon)
        self.initial_rate = float(initial_rate)
        self._mean_gap: dict[int, float] = {}
        self._last_update: dict[int, float] = {}

    def observe_update(self, index: int, now: float) -> None:
        """Record one update arrival for object ``index``."""
        last = self._last_update.get(index)
        self._last_update[index] = now
        if last is None or now <= last:
            return
        gap = now - last
        mean = self._mean_gap.get(index)
        if mean is None:
            self._mean_gap[index] = gap
        else:
            weight = 1.0 / self.horizon
            self._mean_gap[index] = (1.0 - weight) * mean + weight * gap

    def rate(self, index: int) -> float:
        """Current rate estimate for object ``index``."""
        mean = self._mean_gap.get(index)
        if mean is None or mean <= 0:
            return self.initial_rate
        return 1.0 / mean

    def observed(self, index: int) -> bool:
        """True once at least one inter-update gap has been measured."""
        return index in self._mean_gap


class EstimatedRatePriority(PriorityFunction):
    """A rate-aware priority driven by measured rather than oracle rates.

    Wraps e.g. :class:`repro.core.priority.PoissonStalenessPriority`;
    during evaluation the wrapped function sees ``obj.rate`` temporarily
    replaced by the online estimate.
    """

    def __init__(self, inner: PriorityFunction,
                 estimator: OnlineRateEstimator) -> None:
        self.inner = inner
        self.estimator = estimator
        self.name = f"estimated-{inner.name}"
        self.time_varying = inner.time_varying

    def unweighted(self, obj: DataObject, now: float) -> float:
        oracle_rate = obj.rate
        obj.rate = self.estimator.rate(obj.index)
        try:
            return self.inner.unweighted(obj, now)
        finally:
            obj.rate = oracle_rate
