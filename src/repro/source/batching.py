"""Refresh batching (paper Sec 10.1, future work).

"In some environments it may be appropriate to amortize network bandwidth
by packaging several data objects into the same message for refreshing.
Doing so will cause some refreshes to be delayed artificially while the
source waits for other refreshes to accumulate.  It would be interesting
to explore the tradeoff between packaging multiple refresh messages
together to save bandwidth versus the increased divergence resulting from
delaying refreshes."

:class:`BatchingSource` extends the cooperating source with a holding pen:
objects whose priority crosses the threshold are *staged* rather than sent,
and a batch message (one bandwidth unit) departs when either ``batch_size``
items have accumulated or the oldest staged item has waited
``batch_timeout``.  The cache applies each item individually.

Threshold bookkeeping: the protocol's multiplicative increase regulates
*bandwidth* consumption, and a batch costs one message, so the threshold
rises once per batch, not once per item.
"""

from __future__ import annotations

from repro.core.objects import DataObject
from repro.network.messages import BatchRefreshMessage
from repro.source.source import SourceNode


class BatchingSource(SourceNode):
    """A source that packages several refreshes into each message."""

    __slots__ = ("batch_size", "batch_timeout", "batches_sent",
                 "items_sent", "_staged", "_staged_since")

    def __init__(self, *args, batch_size: int = 4,
                 batch_timeout: float = 5.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if batch_timeout <= 0:
            raise ValueError(
                f"batch_timeout must be > 0, got {batch_timeout}")
        self.batch_size = batch_size
        self.batch_timeout = batch_timeout
        self.batches_sent = 0
        self.items_sent = 0
        self._staged: list[DataObject] = []
        self._staged_since: float | None = None

    # ------------------------------------------------------------------
    # Refresh scheduling (overrides the one-message-per-object flow)
    # ------------------------------------------------------------------
    def drain(self, now: float) -> bool:
        """Stage over-threshold objects; flush when full or timed out.

        A batching source reports "needs a wakeup" whenever refreshes are
        still staged: a partial batch is waiting on its timeout and a full
        one may be waiting on bandwidth, both of which resolve on a later
        tick.
        """
        self.threshold.maybe_decay(now)
        tracker = self.monitor.tracker
        staged_indices = {obj.index for obj in self._staged}
        while True:
            top = tracker.peek()
            if top is None:
                break
            index, priority = top
            if priority < self.threshold.value:
                break
            tracker.pop()
            if index in staged_indices:
                continue
            self._staged.append(self._by_index[index])
            staged_indices.add(index)
            if self._staged_since is None:
                self._staged_since = now
        self._maybe_flush(now)
        return bool(self._staged)

    def on_tick(self, now: float) -> None:
        super().on_tick(now)
        self._maybe_flush(now)

    def _maybe_flush(self, now: float) -> None:
        if not self._staged:
            return
        full = len(self._staged) >= self.batch_size
        expired = (self._staged_since is not None
                   and now - self._staged_since >= self.batch_timeout)
        if full or expired:
            self._flush(now)

    def _flush(self, now: float) -> bool:
        """Send one batch message (one bandwidth unit)."""
        batch = self._staged[: self.batch_size]
        message = BatchRefreshMessage(
            source_id=self.source_id,
            sent_at=now,
            items=[(obj.index, obj.value, obj.update_count)
                   for obj in batch],
            threshold=self.threshold.value,
        )
        if not self.topology.send_upstream(message):
            return False  # out of bandwidth; retry on a later tick
        for obj in batch:
            obj.mark_sent(now)
            self.monitor.on_refresh_sent(obj, now)
            self.items_sent += 1
        self._staged = self._staged[self.batch_size:]
        self._staged_since = now if self._staged else None
        self.threshold.on_refresh(now)
        self.batches_sent += 1
        self.refreshes_sent += 1  # one message on the wire
        return True

    @property
    def staged(self) -> int:
        """Number of refreshes currently waiting for the batch to fill."""
        return len(self._staged)
