"""Priority monitoring at the sources (paper Sec 8).

Two implementations of the same interface:

* :class:`TriggerMonitor` -- exact: priority is recomputed whenever an
  update occurs (Sec 8.2 shows priority can only change on updates for
  non-time-varying priority functions).  Requires triggers or equivalent
  change capture at the source.
* :class:`SamplingMonitor` -- approximate (Sec 8.2.1): the source samples
  each object's divergence periodically, estimates the divergence integral
  by the midpoint rule ("each sampled value can be assumed to have been
  active during the period beginning and ending halfway between successive
  samples"), and optionally schedules the *next* sample predictively at the
  time the priority is projected to reach the refresh threshold:

      t_future = t_last + sqrt((t_now - t_last)^2
                               + 2 (T - P(O, t_now)) / (rho_i W(O, t_now)))

  with ``rho_i`` the estimated divergence rate.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.core.divergence import DivergenceMetric
from repro.core.objects import DataObject
from repro.core.priority import PriorityFunction
from repro.core.tracking import PriorityTracker
from repro.core.weights import WeightModel
from repro.sim.events import WakeupSet


class PriorityMonitor(ABC):
    """Keeps a source's :class:`PriorityTracker` up to date."""

    __slots__ = ("tracker", "priority_fn", "weights")

    def __init__(self, tracker: PriorityTracker,
                 priority_fn: PriorityFunction,
                 weights: WeightModel) -> None:
        self.tracker = tracker
        self.priority_fn = priority_fn
        self.weights = weights

    @abstractmethod
    def on_update(self, obj: DataObject, now: float) -> None:
        """An update was applied to ``obj``."""

    @abstractmethod
    def on_tick(self, obj_list: list[DataObject], now: float) -> None:
        """Periodic work (sampling, re-evaluation of time-varying priority)."""

    # ------------------------------------------------------------------
    # Event-driven scheduling hooks
    # ------------------------------------------------------------------
    #: True when :meth:`on_tick` does real work *every* tick regardless of
    #: activity (time-varying priorities); the policy then falls back to
    #: the degenerate everyone-wakes-every-dt schedule.
    @property
    def wants_tick(self) -> bool:
        return False

    def prime(self, obj_list: list[DataObject]) -> None:
        """Install initial wakeup state for event-driven scheduling."""

    def next_wake_time(self) -> float | None:
        """Earliest time this monitor needs its source woken (or ``None``).

        The owning policy arms the source's wakeup with this after every
        interaction, so a monitor never needs to call back into the
        engine itself.
        """
        return None

    def on_wake(self, source, now: float) -> None:
        """Deadline-driven replacement for :meth:`on_tick`.

        Called by the policy dispatcher when the source was woken; must
        perform exactly the work the per-tick scan would have done at this
        tick for the objects that are actually due.
        """

    def on_refresh_sent(self, obj: DataObject, now: float) -> None:
        """``obj`` was refreshed; drop it from the queue."""
        self.tracker.remove(obj.index)

    def refresh_priorities(self, obj_list: list[DataObject],
                           now: float) -> None:
        """Bulk re-evaluation (for fluctuating weights or time-varying
        priority functions).  Monitors that cannot observe state on demand
        (sampling) leave their estimates untouched."""

    def _recompute(self, obj: DataObject, now: float) -> None:
        weight = self.weights.weight(obj.index, now)
        priority = self.priority_fn.priority(obj, weight, now)
        self.tracker.update(obj.index, priority)


class TriggerMonitor(PriorityMonitor):
    """Exact monitoring via update triggers (the paper's default)."""

    __slots__ = ()

    def on_update(self, obj: DataObject, now: float) -> None:
        self._recompute(obj, now)

    def on_tick(self, obj_list: list[DataObject], now: float) -> None:
        # Only time-varying priority functions (the Sec 9 bound priority)
        # need periodic recomputation; everything else is exact already.
        if self.priority_fn.time_varying:
            self.refresh_priorities(obj_list, now)

    @property
    def wants_tick(self) -> bool:
        # With a time-varying priority every object's priority changes
        # every tick, so there is nothing to schedule around; otherwise
        # priorities move only on updates and the monitor is fully
        # event-driven (Sec 8.2).
        return self.priority_fn.time_varying

    def refresh_priorities(self, obj_list: list[DataObject],
                           now: float) -> None:
        # Time-varying priorities (the Sec 9 bound) grow even for
        # synchronized objects, so every object is re-evaluated; for
        # update-driven priorities only diverged objects can be nonzero.
        time_varying = self.priority_fn.time_varying
        for obj in obj_list:
            if (time_varying or obj.index in self.tracker
                    or obj.belief.divergence != 0.0):
                self._recompute(obj, now)


class SamplingMonitor(PriorityMonitor):
    """Sampling-based monitoring for sources without update triggers.

    Parameters
    ----------
    metric:
        Divergence metric to evaluate on each sample.
    interval:
        Regular sampling interval per object.
    predictive:
        When True and a threshold getter is provided, the next sample of an
        object is scheduled at the projected threshold-crossing time
        (clamped to ``[min_interval, interval]``).
    threshold:
        Zero-argument callable returning the source's current refresh
        threshold (used only for predictive scheduling).
    """

    __slots__ = ("metric", "interval", "min_interval", "predictive",
                 "threshold", "samples_taken", "_last_sample_time",
                 "_last_sample_div", "_est_integral", "_next_sample",
                 "_deadlines")

    def __init__(self, tracker: PriorityTracker,
                 priority_fn: PriorityFunction, weights: WeightModel,
                 metric: DivergenceMetric, interval: float,
                 predictive: bool = False,
                 threshold=None, min_interval: float = 1.0) -> None:
        super().__init__(tracker, priority_fn, weights)
        if interval <= 0:
            raise ValueError(f"sampling interval must be > 0, got {interval}")
        self.metric = metric
        self.interval = interval
        self.min_interval = min_interval
        self.predictive = predictive
        self.threshold = threshold
        self.samples_taken = 0
        # Per-object estimator state, keyed by object index.
        self._last_sample_time: dict[int, float] = {}
        self._last_sample_div: dict[int, float] = {}
        self._est_integral: dict[int, float] = {}
        self._next_sample: dict[int, float] = {}
        # Event-driven view of _next_sample: the same deadlines on a heap,
        # so a wakeup-scheduled source touches only the objects that are
        # due instead of scanning all of them each tick.
        self._deadlines = WakeupSet()

    # ------------------------------------------------------------------
    # Monitor interface
    # ------------------------------------------------------------------
    def on_update(self, obj: DataObject, now: float) -> None:
        # A sampling source does not see individual updates.
        pass

    def on_refresh_sent(self, obj: DataObject, now: float) -> None:
        super().on_refresh_sent(obj, now)
        index = obj.index
        self._last_sample_time[index] = now
        self._last_sample_div[index] = 0.0
        self._est_integral[index] = 0.0
        self._set_next_sample(index, now + self.interval)

    def on_tick(self, obj_list: list[DataObject], now: float) -> None:
        for obj in obj_list:
            if now + 1e-12 >= self._next_sample.get(obj.index, 0.0):
                self.sample(obj, now)

    # ------------------------------------------------------------------
    # Event-driven scheduling hooks
    # ------------------------------------------------------------------
    def prime(self, obj_list: list[DataObject]) -> None:
        """Arm every object's deadline (unseen objects are due at once,
        mirroring ``_next_sample``'s default of 0)."""
        for obj in obj_list:
            self._deadlines.reschedule(
                obj.index, self._next_sample.get(obj.index, 0.0))

    def next_wake_time(self) -> float | None:
        return self._deadlines.peek_time()

    def on_wake(self, source, now: float) -> None:
        """Sample exactly the objects whose deadline has arrived.

        ``pop_due`` returns indices ascending, the same order the per-tick
        scan visited due objects, and the ``1e-12`` slack matches the
        scan's deadline comparison -- so a wakeup-scheduled source takes
        bit-identical samples at bit-identical times.
        """
        by_index = source._by_index
        for index in self._deadlines.pop_due(now, eps=1e-12):
            self.sample(by_index[index], now)

    def _set_next_sample(self, index: int, time: float) -> None:
        self._next_sample[index] = time
        self._deadlines.reschedule(index, time)

    # ------------------------------------------------------------------
    # Sampling machinery
    # ------------------------------------------------------------------
    def sample(self, obj: DataObject, now: float) -> None:
        """Take one divergence sample of ``obj`` and update its priority."""
        index = obj.index
        view = obj.belief
        divergence = self.metric.compute(
            obj.value, view.reference_value,
            obj.update_count - view.reference_count)
        last_t = self._last_sample_time.get(index, view.last_refresh_time)
        last_d = self._last_sample_div.get(index, 0.0)
        integral = self._est_integral.get(index, 0.0)
        # Midpoint attribution: each sample's value is active from halfway
        # since the previous sample to halfway until the next; telescoping
        # over samples this equals the trapezoid rule used here.
        integral += 0.5 * (last_d + divergence) * (now - last_t)
        self._last_sample_time[index] = now
        self._last_sample_div[index] = divergence
        self._est_integral[index] = integral
        self.samples_taken += 1

        weight = self.weights.weight(index, now)
        elapsed = now - view.last_refresh_time
        priority = (elapsed * divergence - integral) * weight
        self.tracker.update(index, priority)
        self._set_next_sample(index, now + self._next_delay(
            obj, priority, divergence, last_t, last_d, now, weight))

    def _next_delay(self, obj: DataObject, priority: float,
                    divergence: float, last_t: float, last_d: float,
                    now: float, weight: float) -> float:
        if not self.predictive or self.threshold is None:
            return self.interval
        threshold = self.threshold()
        if priority >= threshold:
            return self.min_interval
        elapsed_since_last = now - last_t
        if elapsed_since_last <= 0:
            return self.interval
        rho = (divergence - last_d) / elapsed_since_last
        if rho <= 0 or weight <= 0:
            return self.interval
        t_last = obj.belief.last_refresh_time
        radicand = ((now - t_last) ** 2
                    + 2.0 * (threshold - priority) / (rho * weight))
        if radicand < 0:
            return self.min_interval
        t_future = t_last + math.sqrt(radicand)
        return min(max(t_future - now, self.min_interval), self.interval)
