"""The discrete-event simulation engine.

:class:`Simulator` owns the clock and the event queue.  Components schedule
one-shot callbacks (:meth:`Simulator.schedule` / :meth:`Simulator.at`) or
recurring per-tick work (:meth:`Simulator.every`).  Time is continuous; the
conventional experiment setup registers tickers with ``interval=dt`` so the
simulation behaves like the paper's one-second-granularity simulator while
still allowing updates at exact (non-integer) event times.
"""

from __future__ import annotations

import contextlib
import gc
import math
from typing import Callable, Iterator

from repro.sim.events import Event, EventQueue, Phase


class SimulationError(RuntimeError):
    """Raised for scheduling mistakes, e.g. scheduling into the past."""


#: Nesting depth of :func:`gc_paused` blocks and the GC state observed by
#: the outermost one.  Parallel workers wrap whole cell functions in
#: ``gc_paused()`` while ``run_policy`` wraps the run inside them, so the
#: context manager must be reentrant: only the outermost exit may restore
#: collection (per process; worker processes each carry their own state).
_gc_pause_depth = 0
_gc_was_enabled = False


@contextlib.contextmanager
def gc_paused() -> Iterator[None]:
    """Pause the cyclic garbage collector for a bounded stretch of work.

    Building and running a simulation allocates millions of small,
    mostly-acyclic objects (events, messages, per-source nodes); the
    generational collector re-scans that entire live graph every few
    thousand allocations, which at m ~ 10^5 costs more wall clock than
    the simulation itself.  Pausing collection (not reference counting --
    plain garbage is still freed instantly) trades a bounded amount of
    memory headroom for that scan time; the previous GC state is restored
    even on exceptions, and any cycles created meanwhile are collected on
    the first automatic pass after the block exits.

    Reentrant: nested blocks are counted, and collection is re-enabled
    only when the block that actually disabled it exits -- an inner block
    exiting must not resume GC underneath a still-running outer block.
    """
    global _gc_pause_depth, _gc_was_enabled
    if _gc_pause_depth == 0:
        _gc_was_enabled = gc.isenabled()
        gc.disable()
    _gc_pause_depth += 1
    try:
        yield
    finally:
        _gc_pause_depth -= 1
        if _gc_pause_depth == 0 and _gc_was_enabled:
            gc.enable()


class Ticker:
    """A recurring task created by :meth:`Simulator.every`.

    The callback receives the current simulation time.  Cancelling a ticker
    stops all future firings.
    """

    __slots__ = ("interval", "phase", "action", "_sim", "_next_event",
                 "cancelled")

    def __init__(self, sim: "Simulator", interval: float, phase: int,
                 action: Callable[[float], None], start: float):
        if interval <= 0:
            raise SimulationError(f"ticker interval must be > 0, got {interval}")
        self.interval = interval
        self.phase = phase
        self.action = action
        self._sim = sim
        self.cancelled = False
        self._next_event = sim.at(start, self._fire, phase=phase)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.action(self._sim.now)
        if not self.cancelled:
            self._next_event = self._sim.at(
                self._sim.now + self.interval, self._fire, phase=self.phase)

    def cancel(self) -> None:
        """Stop all future firings and unregister from the simulator.

        Safe to call more than once; the ticker prunes itself from the
        simulator's registry so long multi-run sessions do not accumulate
        dead ticker objects.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._next_event is not None:
            self._next_event.cancel()
        self._sim._forget_ticker(self)


class Simulator:
    """Discrete-event simulator with phased intra-tick ordering.

    Example::

        sim = Simulator()
        sim.every(1.0, lambda t: print("tick", t), phase=Phase.METRICS)
        sim.schedule(0.5, lambda: print("one-shot at t=0.5"))
        sim.run_until(3.0)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._queue = EventQueue()
        self._tickers: list[Ticker] = []
        self._wakeups: dict[tuple[int, object], Event] = {}
        self._wakeup_actions: dict[tuple[int, object],
                                   Callable[[], None]] = {}
        #: end time of the innermost :meth:`run_until` in progress
        #: (``inf`` outside one).  Batched replayers use it to avoid
        #: applying trace events the per-event schedule would never reach.
        self.run_horizon: float = math.inf

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None],
                 phase: int = Phase.DEFAULT) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self.now + delay, phase, action)

    def at(self, time: float, action: Callable[[], None],
           phase: int = Phase.DEFAULT) -> Event:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} < now={self.now}")
        return self._queue.push(time, phase, action)

    def every(self, interval: float, action: Callable[[float], None],
              phase: int = Phase.DEFAULT, start: float | None = None) -> Ticker:
        """Schedule ``action(now)`` every ``interval``, starting at ``start``.

        ``start`` defaults to ``now + interval`` (first firing one interval
        in), which is the right default for per-tick bookkeeping that should
        observe a full tick's worth of activity.
        """
        if start is None:
            start = self.now + interval
        ticker = Ticker(self, interval, phase, action, start)
        self._tickers.append(ticker)
        return ticker

    def wake_at(self, key, time: float, action: Callable[[], None],
                phase: int = Phase.DEFAULT) -> Event:
        """Schedule or *reschedule* a per-entity timer.

        At most one pending wakeup exists per ``(phase, key)``: calling
        ``wake_at`` again moves the timer (the previous event is
        cancelled), which is the natural API for entities whose next
        deadline keeps changing -- a source's projected threshold
        crossing, an object's next predictive sample.  The timer fires as
        an ordinary event, so the ``(time, phase, seq)`` ordering
        guarantees apply; entities that must preserve a relative order
        *within* one phase and timestamp should share a dispatcher built
        on :class:`repro.sim.events.WakeupSet` instead.

        Rescheduling at the timer's *current* deadline replaces the
        callback but keeps the already-queued event (and hence its
        position in the same-timestamp FIFO order): the action is looked
        up at fire time, never captured at scheduling time.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot wake at t={time} < now={self.now}")
        handle = (int(phase), key)
        self._wakeup_actions[handle] = action
        existing = self._wakeups.get(handle)
        if existing is not None and not existing.cancelled:
            if existing.time == time:
                return existing
            existing.cancel()

        def fire() -> None:
            if self._wakeups.get(handle) is event:
                del self._wakeups[handle]
                self._wakeup_actions.pop(handle)()
            # A replaced timer never runs a stale action: the handle now
            # maps to the replacement event, which owns the action.

        event = self._queue.push(time, phase, fire)
        self._wakeups[handle] = event
        return event

    def cancel_wake(self, key, phase: int = Phase.DEFAULT) -> None:
        """Cancel a pending :meth:`wake_at` timer (no-op if none)."""
        handle = (int(phase), key)
        event = self._wakeups.pop(handle, None)
        if event is not None:
            event.cancel()
        self._wakeup_actions.pop(handle, None)

    @property
    def pending_wakeups(self) -> int:
        """Number of live :meth:`wake_at` timers."""
        return sum(1 for event in self._wakeups.values()
                   if not event.cancelled)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def next_event_time(self) -> float | None:
        """Time of the next queued live event (``None`` when idle).

        Inside an event's action this is the *foreign-event boundary*: the
        running event is already off the heap, so a batched replayer sees
        exactly the earliest timestamp anyone else is scheduled for.
        """
        return self._queue.peek_time()

    def advance_clock(self, time: float) -> None:
        """Move ``now`` forward between queued events (batched replay).

        A batched replayer applies several trace events inside one
        simulator event; advancing the clock as it goes keeps every
        ``sim.now`` read (message delivery clocks, hook timestamps)
        identical to the per-event schedule, where each trace event's own
        firing moved the clock.  Must never rewind, and must stay at or
        before the next queued event (enforced by the batch boundary, not
        re-checked here -- this is a hot-path call).
        """
        if time < self.now:
            raise SimulationError(
                f"cannot rewind the clock to t={time} < now={self.now}")
        self.now = time

    def step(self) -> bool:
        """Execute the single next event.  Returns ``False`` when idle."""
        event = self._queue.pop()
        if event is None:
            return False
        self.now = event.time
        event.action()
        return True

    def run_until(self, end_time: float) -> None:
        """Run all events with ``time <= end_time``; leave ``now = end_time``.

        Events scheduled exactly at ``end_time`` *do* execute, so a ticker
        with interval 1 run until ``t=100`` fires 100 times.  While the
        loop runs, :attr:`run_horizon` holds ``end_time`` so batched
        replayers never apply trace events past the cut-off the per-event
        schedule would respect.
        """
        queue = self._queue
        previous_horizon = self.run_horizon
        self.run_horizon = end_time
        try:
            while True:
                next_time = queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                event = queue.pop()
                assert event is not None
                self.now = event.time
                event.action()
        finally:
            self.run_horizon = previous_horizon
        self.now = max(self.now, end_time)

    def cancel_all_tickers(self) -> None:
        """Stop every recurring task (used when tearing down a policy)."""
        for ticker in list(self._tickers):
            ticker.cancel()
        self._tickers.clear()

    def _forget_ticker(self, ticker: Ticker) -> None:
        """Drop a cancelled ticker from the registry (idempotent)."""
        try:
            self._tickers.remove(ticker)
        except ValueError:
            pass

    @property
    def active_tickers(self) -> int:
        """Number of live (not-yet-cancelled) recurring tasks."""
        return len(self._tickers)

    @property
    def pending_events(self) -> int:
        """Number of live (not-yet-cancelled) events in the queue."""
        return len(self._queue)
