"""Named, reproducible random-number streams.

Experiments compare several policies on the *same* update workload (the
paper's Figure 4 plots the ratio of one policy's divergence to another's on
identical update streams).  To make that trivially correct we derive every
consumer's generator from a root seed plus a stable string key, so the
"workload" stream is bit-identical across runs regardless of how many draws
the "policy" stream makes.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Factory for independent, reproducible ``numpy.random.Generator`` streams.

    Streams are keyed by name.  The same ``(seed, name)`` pair always yields
    a generator with the same state, and distinct names yield statistically
    independent streams (via ``SeedSequence`` spawn keys).

    Example::

        rngs = RngRegistry(seed=7)
        workload_rng = rngs.stream("workload")
        policy_rng = rngs.stream("policy")
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for ``name`` (same state every call)."""
        key = zlib.crc32(name.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
        return np.random.Generator(np.random.PCG64(seq))

    def child(self, name: str, index: int) -> np.random.Generator:
        """Return the ``index``-th generator in the family ``name``.

        Useful for per-source or per-object streams, e.g.
        ``rngs.child("source", 3)``.
        """
        key = zlib.crc32(name.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=self.seed,
                                     spawn_key=(key, int(index)))
        return np.random.Generator(np.random.PCG64(seq))
