"""Discrete-event simulation kernel (events, engine, reproducible RNG)."""

from repro.sim.engine import SimulationError, Simulator, Ticker
from repro.sim.events import Event, EventQueue, Phase, WakeupSet
from repro.sim.random import RngRegistry

__all__ = [
    "Event",
    "EventQueue",
    "Phase",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Ticker",
    "WakeupSet",
]
