"""Event primitives for the discrete-event simulation kernel.

The kernel is deliberately small: a binary-heap priority queue of
:class:`Event` objects ordered by ``(time, phase, seq)``.  The *phase*
component gives deterministic intra-tick ordering (data updates happen
before network transmission, which happens before source decisions, and so
on -- see :class:`Phase`), and ``seq`` is a monotonically increasing
sequence number that breaks remaining ties in FIFO order so that runs are
fully reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from enum import IntEnum
from typing import Callable


class Phase(IntEnum):
    """Intra-tick execution phases, ordered by when they run within a tick.

    The paper's simulation loop (Sec 6) has a natural causal order inside
    each one-second tick.  Encoding it as an explicit phase keeps results
    deterministic regardless of the order in which components were wired up.
    """

    UPDATES = 0  #: source data objects receive updates
    NETWORK = 1  #: links refill credit and drain their FIFO queues
    SOURCES = 2  #: sources make refresh decisions and send messages
    CACHE = 3  #: the cache measures utilization, sends feedback / polls
    METRICS = 4  #: metric accumulators take their per-tick samples
    DEFAULT = 5  #: anything that does not care about intra-tick ordering


class Event:
    """A scheduled callback.

    Events are created through :meth:`repro.sim.engine.Simulator.schedule`
    (not directly) and support O(1) cancellation: cancelled events stay in
    the heap but are skipped when popped.
    """

    __slots__ = ("time", "phase", "seq", "action", "cancelled", "_queue")

    def __init__(self, time: float, phase: int, seq: int,
                 action: Callable[[], None],
                 queue: "EventQueue | None" = None):
        self.time = time
        self.phase = phase
        self.seq = seq
        self.action = action
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call more than once."""
        if not self.cancelled and self._queue is not None:
            self._queue._live -= 1
        self.cancelled = True

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.phase, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} phase={self.phase} seq={self.seq}{state}>"


class EventQueue:
    """A min-heap of :class:`Event` objects with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, phase: int,
             action: Callable[[], None]) -> Event:
        event = Event(time, phase, next(self._counter), action, queue=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` when empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Event | None:
        """Remove and return the next live event, or ``None`` when empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def _discard_cancelled(self) -> None:
        # Cancelled events already decremented the live counter in
        # Event.cancel(); here we only evict them from the heap.
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
