"""Event primitives for the discrete-event simulation kernel.

The kernel is deliberately small: a binary-heap priority queue of
:class:`Event` objects ordered by ``(time, phase, seq)``.  The *phase*
component gives deterministic intra-tick ordering (data updates happen
before network transmission, which happens before source decisions, and so
on -- see :class:`Phase`), and ``seq`` is a monotonically increasing
sequence number that breaks remaining ties in FIFO order so that runs are
fully reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from enum import IntEnum
from typing import Callable


class Phase(IntEnum):
    """Intra-tick execution phases, ordered by when they run within a tick.

    The paper's simulation loop (Sec 6) has a natural causal order inside
    each one-second tick.  Encoding it as an explicit phase keeps results
    deterministic regardless of the order in which components were wired up.
    """

    UPDATES = 0  #: source data objects receive updates
    NETWORK = 1  #: links refill credit and drain their FIFO queues
    SOURCES = 2  #: sources make refresh decisions and send messages
    CACHE = 3  #: the cache measures utilization, sends feedback / polls
    METRICS = 4  #: metric accumulators take their per-tick samples
    DEFAULT = 5  #: anything that does not care about intra-tick ordering


class Event:
    """A scheduled callback.

    Events are created through :meth:`repro.sim.engine.Simulator.schedule`
    (not directly) and support O(1) cancellation: cancelled events stay in
    the heap but are skipped when popped.
    """

    __slots__ = ("time", "phase", "seq", "action", "cancelled", "_queue")

    def __init__(self, time: float, phase: int, seq: int,
                 action: Callable[[], None],
                 queue: "EventQueue | None" = None):
        self.time = time
        self.phase = phase
        self.seq = seq
        self.action = action
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call more than once."""
        if not self.cancelled and self._queue is not None:
            self._queue._live -= 1
        self.cancelled = True

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.phase, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6g} phase={self.phase} seq={self.seq}{state}>"


class EventQueue:
    """A min-heap of :class:`Event` objects with lazy cancellation.

    Cancelled events are normally evicted only when they surface at the top
    of the heap.  Cancel/reschedule-heavy users (predictive sampling, the
    wakeup layer) can bury arbitrarily many dead events deep in the heap,
    so :meth:`push` compacts the heap -- filtering dead entries and
    re-heapifying -- whenever cancelled entries outnumber live ones.  That
    keeps memory proportional to the number of *live* events while staying
    amortized O(log n) per operation.
    """

    #: below this heap size compaction is not worth the bookkeeping
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    @property
    def heap_size(self) -> int:
        """Physical heap length, including not-yet-evicted cancelled events."""
        return len(self._heap)

    def push(self, time: float, phase: int,
             action: Callable[[], None]) -> Event:
        event = Event(time, phase, next(self._counter), action, queue=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        if (len(self._heap) >= self.COMPACT_MIN_SIZE
                and self._live * 2 < len(self._heap)):
            self._compact()
        return event

    def _compact(self) -> None:
        """Evict every cancelled event and restore the heap invariant."""
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` when empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Event | None:
        """Remove and return the next live event, or ``None`` when empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def _discard_cancelled(self) -> None:
        # Cancelled events already decremented the live counter in
        # Event.cancel(); here we only evict them from the heap.
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)


class WakeupSet:
    """Pending per-entity wakeup times, popped in deterministic order.

    The event-driven scheduling layer replaces "scan every entity every
    tick" loops with "wake exactly the entities that asked for it".  A
    ``WakeupSet`` holds at most one pending wakeup time per key (an entity
    id -- a source index, an object index, a cache id) on a lazy min-heap:

    * :meth:`arm` requests a wakeup no later than ``time`` (earliest wins,
      the right semantics for "several events each need me next tick");
    * :meth:`reschedule` unconditionally replaces the key's wakeup time
      (the right semantics for "my next sample moved later");
    * :meth:`pop_due` drains every key due by ``now`` and returns them in
      ascending key order -- exactly the order the retired full-scan loops
      visited entities, which is what keeps event-driven runs bit-for-bit
      identical to the tick-scan schedule.

    The host (usually a per-tick dispatcher ticker) decides *when* to call
    :meth:`pop_due`; the set itself never touches the event queue, so the
    simulator's ``(time, phase, seq)`` ordering is unaffected.
    """

    __slots__ = ("_times", "_heap")

    def __init__(self) -> None:
        self._times: dict = {}
        self._heap: list = []

    def __len__(self) -> int:
        return len(self._times)

    def __contains__(self, key) -> bool:
        return key in self._times

    def wake_time(self, key):
        """Pending wakeup time for ``key`` (``None`` when unarmed)."""
        return self._times.get(key)

    def arm(self, key, time) -> None:
        """Request a wakeup for ``key`` at ``time`` at the latest."""
        current = self._times.get(key)
        if current is not None and current <= time:
            return
        self._times[key] = time
        heapq.heappush(self._heap, (time, key))

    def reschedule(self, key, time) -> None:
        """Set ``key``'s wakeup to exactly ``time``, replacing any pending."""
        self._times[key] = time
        heapq.heappush(self._heap, (time, key))

    def disarm(self, key) -> None:
        """Drop any pending wakeup for ``key`` (stale heap entries are
        discarded lazily)."""
        self._times.pop(key, None)

    def peek_time(self):
        """Earliest pending wakeup time, or ``None`` when empty."""
        self._prune()
        return self._heap[0][0] if self._heap else None

    def pop_due(self, now, eps: float = 0.0) -> list:
        """Remove and return all keys due by ``now + eps``, key-ascending."""
        due = []
        heap = self._heap
        limit = now + eps
        while heap:
            self._prune()
            if not heap or heap[0][0] > limit:
                break
            time, key = heapq.heappop(heap)
            del self._times[key]
            due.append(key)
        due.sort()
        return due

    def _prune(self) -> None:
        heap = self._heap
        while heap and self._times.get(heap[0][1]) != heap[0][0]:
            heapq.heappop(heap)
