"""Cooperation in competitive environments (paper Sec 7).

When sources and the cache disagree on refresh priorities (different
divergence functions or weights), the cache dedicates a fraction ``Psi`` of
its bandwidth to satisfying *source* priorities and ``1 - Psi`` to its own.
The paper sketches three ways to divide the source share:

1. ``"equal"`` -- every source gets the same slice of ``Psi * C``.
2. ``"proportional"`` -- slices proportional to each source's number of
   cached objects (identical to option 1 when all sources have equal n).
3. ``"contribution"`` -- no fixed slices; instead, for every refresh a
   source earns under the cache's threshold policy it may piggyback
   ``Psi / (1 - Psi)`` refreshes of its own choosing, so sources that serve
   the cache's objectives well earn proportionally more autonomy.

Implementation: the cache-priority flow is the ordinary
:class:`CooperativePolicy` threshold algorithm using the cache's weight
model (``workload.weights``).  Source-priority sends are paced separately
(token buckets for options 1-2, an earned-credit counter for option 3) and
pick the top object under the *source's own* weight model; they are
ordinary refresh messages on the same constrained links, so the adaptive
threshold algorithm automatically shrinks the cache-priority flow into the
remaining ``(1 - Psi)`` of the bandwidth.

Both objectives are measured: the context collector uses the cache's
weights, and this policy maintains a second collector under the sources'
weights, so experiments can plot the Psi trade-off curve.
"""

from __future__ import annotations

import numpy as np

from repro.core.objects import DataObject
from repro.core.priority import PriorityFunction
from repro.core.tracking import PriorityTracker
from repro.core.weights import WeightModel
from repro.metrics.collector import DivergenceCollector
from repro.network.bandwidth import (
    replay_credit_ticks,
    ticks_until_capacity,
    ticks_until_credit,
)
from repro.policies.base import SimulationContext
from repro.policies.cooperative import CooperativePolicy
from repro.sim.events import Phase, WakeupSet


class CompetitivePolicy(CooperativePolicy):
    """Psi-split bandwidth sharing between cache and source priorities."""

    name = "competitive"

    def __init__(self, *args, source_weights: WeightModel,
                 psi: float = 0.25, option: str = "equal",
                 source_priority_fn: PriorityFunction | None = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0.0 <= psi < 1.0:
            raise ValueError(f"psi must be in [0, 1), got {psi}")
        if option not in ("equal", "proportional", "contribution"):
            raise ValueError(f"unknown split option {option!r}")
        self.source_weights = source_weights
        self.psi = psi
        self.option = option
        self.source_priority_fn = source_priority_fn or self.priority_fn
        self.own_refreshes_sent = 0
        self._own_trackers: list[PriorityTracker] = []
        self._own_credit: list[float] = []
        self._own_rate: list[float] = []
        self.source_collector: DivergenceCollector | None = None
        # Event-driven own-send state: wakeups keyed by (integer) tick
        # number of the own-sends dispatcher, per-source last-accrual tick.
        self._own_wakeups = WakeupSet()
        self._own_tick_no = 0
        self._own_credit_tick: list[int] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, ctx: SimulationContext) -> None:
        super().attach(ctx)
        workload = ctx.workload
        if self.source_weights.n != workload.num_objects:
            raise ValueError(
                f"source weight model covers {self.source_weights.n} "
                f"objects, expected {workload.num_objects}")
        m = workload.num_sources
        self._own_trackers = [PriorityTracker() for _ in range(m)]
        self._own_credit = [0.0] * m
        self._own_rate = self._allocate_rates(workload)
        self.source_collector = DivergenceCollector(
            workload.num_objects, self.source_weights, warmup=ctx.warmup)
        ctx.add_update_hook(self._on_update_competitive)
        assert self.caches
        for cache in self.caches:
            cache.add_refresh_hook(self._on_refresh_applied)
        for source in self.sources:
            source.send_hooks.append(self._on_refresh_sent)
        self._own_wakeups = WakeupSet()
        self._own_tick_no = 0
        self._own_credit_tick = [0] * m
        ctx.sim.every(ctx.dt, self._own_sends_tick, phase=Phase.SOURCES)

    def _allocate_rates(self, workload) -> list[float]:
        """Per-source own-priority send rates for options 1 and 2."""
        total = self.psi * self.cache_bandwidth.mean_rate
        m = workload.num_sources
        if self.option == "equal":
            return [total / m] * m
        if self.option == "proportional":
            per_source = workload.objects_per_source
            counts = [per_source] * m
            total_objects = sum(counts)
            return [total * c / total_objects for c in counts]
        return [0.0] * m  # contribution: earned, not allocated

    # ------------------------------------------------------------------
    # Event routing
    # ------------------------------------------------------------------
    def _on_update_competitive(self, obj: DataObject, now: float) -> None:
        weight = self.source_weights.weight(obj.index, now)
        priority = self.source_priority_fn.priority(obj, weight, now)
        self._own_trackers[obj.source_id].update(obj.index, priority)
        if self._event_driven:
            # Fresh own-priority work: wake at the next own-sends fire
            # (the same tick when the update lands before SOURCES phase).
            self._own_wakeups.arm(obj.source_id, self._own_tick_no + 1)
        if self.source_collector is not None:
            self.source_collector.record(obj.index, now,
                                         obj.truth.divergence)

    def _on_refresh_applied(self, obj: DataObject, now: float) -> None:
        if self.source_collector is not None:
            self.source_collector.record(obj.index, now,
                                         obj.truth.divergence)
        self._own_trackers[obj.source_id].remove(obj.index)

    def _on_refresh_sent(self, obj: DataObject, now: float,
                         threshold_driven: bool) -> None:
        # Any send synchronizes the object; drop it from the own-priority
        # queue immediately rather than waiting for cache-side application
        # (which lags under congestion and would allow duplicate sends).
        self._own_trackers[obj.source_id].remove(obj.index)
        if (threshold_driven and self.option == "contribution"
                and self.psi > 0):
            # Sec 7 option 3: each *cache-priority* refresh earns the
            # source Psi / (1 - Psi) piggybacked refreshes of its own
            # choosing.  Own-priority sends must not earn credit (the
            # piggyback loop would feed itself), and banked credit is
            # capped so a warm-up burst cannot flood the link later.
            earned = self._own_credit[obj.source_id] \
                + self.psi / (1.0 - self.psi)
            self._own_credit[obj.source_id] = min(earned, 4.0)
            if self._event_driven:
                # Earned credit may now cover a piggybacked send.
                self._own_wakeups.arm(obj.source_id, self._own_tick_no + 1)

    # ------------------------------------------------------------------
    # Own-priority sends
    #
    # Event mode mirrors the uniform policy's exact-replay trick: wakeups
    # are keyed by own-dispatcher tick number, and the per-tick token
    # accruals a parked source skipped are replayed float-for-float at
    # wake time (short-circuiting once the credit saturates at its cap),
    # so own-priority sends land on exactly the ticks the full scan chose.
    # ------------------------------------------------------------------
    def _own_sends_tick(self, now: float) -> None:
        self._own_tick_no += 1
        if not self._event_driven:
            for j in range(len(self.sources)):
                self._own_accrue_one_tick(j)
                self._own_send_while_credit(j, now)
            return
        for j in self._own_wakeups.pop_due(self._own_tick_no):
            self._own_replay_accrual(j)
            blocked = self._own_send_while_credit(j, now)
            if blocked:
                self._own_arm_blocked(j, now)
            elif len(self._own_trackers[j]):
                self._own_arm_crossing(j)

    def _own_accrue_one_tick(self, j: int) -> None:
        if self.option in ("equal", "proportional"):
            rate_dt = self._own_rate[j] * self._ctx.dt
            self._own_credit[j] = min(self._own_credit[j] + rate_dt,
                                      max(1.0, rate_dt))
        self._own_credit_tick[j] = self._own_tick_no

    def _own_replay_accrual(self, j: int) -> None:
        if self.option in ("equal", "proportional"):
            rate_dt = self._own_rate[j] * self._ctx.dt
            self._own_credit[j] = replay_credit_ticks(
                self._own_credit[j], rate_dt, max(1.0, rate_dt),
                self._own_tick_no - self._own_credit_tick[j])
        self._own_credit_tick[j] = self._own_tick_no

    def _own_send_while_credit(self, j: int, now: float) -> bool:
        """Drain own-priority sends; True when source-bandwidth-blocked."""
        ctx = self._ctx
        source = self.sources[j]
        tracker = self._own_trackers[j]
        while self._own_credit[j] >= 1.0:
            top = tracker.peek()
            if top is None:
                break
            index, _ = top
            obj = ctx.objects[index]
            if obj.belief.divergence == 0.0:
                # Already synchronized by the cache-priority flow.
                tracker.pop()
                continue
            if not source._send_refresh(obj, now,
                                        adjust_threshold=False):
                return True  # out of source-side bandwidth
            tracker.pop()
            self._own_credit[j] -= 1.0
            self.own_refreshes_sent += 1
        return False

    def _own_arm_blocked(self, j: int, now: float) -> None:
        """Re-arm a source whose *link* is dry mid own-priority send.

        Same contract as the uniform policy's ``_arm_blocked``: steady
        links retry next tick; trace links solve the crossing tick on the
        profile's cumulative capacity array (conservative -- never late,
        at most one tick early, re-verified at wake).  ``None`` parks the
        source, exactly like the retry loop's forever-failing sends.
        """
        link = self.topology.source_links[j]
        ticks = 1
        if link._trace is not None:
            ticks = ticks_until_capacity(link.profile, now, self._ctx.dt,
                                         1.0 - link.credit)
            if ticks is None:
                return
        self._own_wakeups.arm(j, self._own_tick_no + ticks)

    def _own_arm_crossing(self, j: int) -> None:
        """Arm source ``j`` at the tick its own-credit next reaches 1.0."""
        if self.option not in ("equal", "proportional"):
            return  # contribution credit is earned, not accrued: park
        rate_dt = self._own_rate[j] * self._ctx.dt
        ticks = ticks_until_credit(self._own_credit[j], rate_dt,
                                   max(1.0, rate_dt))
        if ticks is not None:
            self._own_wakeups.arm(j, self._own_tick_no + ticks)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def source_objective_divergence(self, end_time: float) -> float:
        """Mean per-object divergence under the *sources'* weight scheme."""
        assert self.source_collector is not None
        self.source_collector.finalize(end_time)
        return self.source_collector.mean_weighted_average()

    def extras(self) -> dict:
        extras = super().extras()
        extras["own_refreshes_sent"] = self.own_refreshes_sent
        extras["psi"] = self.psi
        extras["option"] = self.option
        return extras
