"""Cache-driven synchronization baselines (paper Sec 6.3, Figure 6).

Three variants of the Cho & Garcia-Molina (CGM) approach, in which the
cache schedules all refreshes and the sources are passive:

* :class:`IdealCacheBasedPolicy` -- "CGM under two theoretical assumptions:
  that the cache can request refreshes without performing any communication
  to sources, and that the cache is aware of the exact update rates".
  Frequencies are allocated once from the true rates; refreshes apply
  instantly and only the total budget constrains them.
* :class:`CGMPollingPolicy` (variants ``"cgm1"`` / ``"cgm2"``) -- the
  practical implementations: every refresh is a poll *round trip* over the
  shared cache link (request + response, two messages), and update rates
  must be estimated from poll outcomes.  CGM1 sees the time of the most
  recent update; CGM2 only sees a boolean "changed?".  The allocation is
  re-solved periodically as estimates improve.

Per the paper, the polling model assumes no source-side bandwidth limits,
so poll responses bypass the source links.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.cache.cache import CacheNode
from repro.cgm.allocation import solve_refresh_frequencies
from repro.cgm.estimators import (
    BinaryChangeEstimator,
    LastUpdateAgeEstimator,
    RateEstimator,
)
from repro.cgm.poller import PollScheduler
from repro.core.objects import DataObject
from repro.network.bandwidth import BandwidthProfile, ConstantBandwidth
from repro.network.messages import Message, PollRequest, PollResponse
from repro.network.topology import Topology
from repro.policies.base import SimulationContext, SyncPolicy
from repro.sim.events import Phase


class IdealCacheBasedPolicy(SyncPolicy):
    """Freshness-optimal polling with oracle rates and free communication."""

    name = "ideal-cache-based"

    def __init__(self, budget: float) -> None:
        """``budget`` is the total refresh frequency (refreshes/second)."""
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self.budget = budget
        self._refreshes = 0
        self._heap: list[tuple[float, int]] = []
        self._periods: np.ndarray | None = None
        self._ctx: SimulationContext | None = None

    def _solve_allocation(self, ctx: SimulationContext) -> np.ndarray:
        """Refresh frequencies under the context's topology.

        One cache: the paper's global freshness-optimal allocation.  N
        caches: each cache solves the allocation over the objects of the
        sources it is primary for, with its 1/N share of the budget --
        budget cannot be shifted between cache nodes, which is exactly the
        constraint the multi-cache scenario experiments probe.
        """
        workload = ctx.workload
        rates = np.asarray(workload.rates, dtype=float)
        config = ctx.topology_config
        if config.num_caches == 1:
            return solve_refresh_frequencies(rates, self.budget)
        assignment = config.assignment_for(workload.num_sources)
        freqs = np.zeros(len(rates))
        share = self.budget / config.num_caches
        # Vectorized object -> primary-cache map via the precomputed owner
        # array (no per-object source_of calls).
        primaries = np.array([targets[0] for targets in assignment],
                             dtype=np.int64)
        primary_of_object = primaries[workload.owner]
        for k in range(config.num_caches):
            indices = np.nonzero(primary_of_object == k)[0]
            if len(indices):
                freqs[indices] = solve_refresh_frequencies(
                    rates[indices], share)
        return freqs

    def attach(self, ctx: SimulationContext) -> None:
        self._ctx = ctx
        freqs = self._solve_allocation(ctx)
        with np.errstate(divide="ignore"):
            self._periods = np.where(freqs > 0, 1.0 / np.where(
                freqs > 0, freqs, 1.0), np.inf)
        rng = ctx.rngs.stream("ideal-cache-based")
        for index in np.nonzero(freqs > 0)[0]:
            first = float(rng.uniform(0.0, self._periods[index]))
            heapq.heappush(self._heap, (first, int(index)))
        ctx.sim.every(ctx.dt, self._on_tick, phase=Phase.CACHE)

    def _on_tick(self, now: float) -> None:
        ctx = self._ctx
        assert ctx is not None and self._periods is not None
        while self._heap and self._heap[0][0] <= now:
            _, index = heapq.heappop(self._heap)
            obj = ctx.objects[index]
            obj.sync_views(now)
            ctx.collector.record(index, now, 0.0)
            self._refreshes += 1
            heapq.heappush(self._heap,
                           (now + float(self._periods[index]), index))

    def refreshes(self) -> int:
        return self._refreshes


class CGMPollingPolicy(SyncPolicy):
    """Practical CGM: poll round trips plus estimated update rates.

    Parameters
    ----------
    cache_bandwidth:
        Profile of the shared cache link; every poll costs one request and
        one response message on it.
    variant:
        ``"cgm1"`` (last-update timestamps visible) or ``"cgm2"``
        (boolean change observations only).
    resolve_interval:
        How often the frequency allocation is re-solved from the current
        rate estimates.
    messages_per_refresh:
        Link cost of one refresh; the allocator budgets
        ``mean_bandwidth / messages_per_refresh`` total poll frequency.
    scheduling:
        ``"event"`` (default) lets idle steady-profile source links skip
        the per-tick network refill (CGM's zero-rate placeholder source
        links never need one); ``"tick"`` refills every link every tick.
        Polling itself is inherently periodic, so the cache-side schedule
        is identical in both modes.
    """

    def __init__(self, cache_bandwidth: BandwidthProfile,
                 variant: str = "cgm1",
                 resolve_interval: float = 50.0,
                 messages_per_refresh: float = 2.0,
                 scheduling: str = "event") -> None:
        if variant not in ("cgm1", "cgm2"):
            raise ValueError(f"unknown CGM variant {variant!r}")
        if scheduling not in ("event", "tick"):
            raise ValueError(f"unknown scheduling mode {scheduling!r}")
        self.scheduling = scheduling
        self.cache_bandwidth = cache_bandwidth
        self.variant = variant
        self.name = variant
        self.resolve_interval = resolve_interval
        self.messages_per_refresh = messages_per_refresh
        self.topology: Topology | None = None
        self.caches: list[CacheNode] = []
        self.scheduler = PollScheduler()
        self.estimators: list[RateEstimator] = []
        self._last_poll_time: np.ndarray | None = None
        self._last_poll_count: np.ndarray | None = None
        self._polls_sent = 0
        self._ctx: SimulationContext | None = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, ctx: SimulationContext) -> None:
        self._ctx = ctx
        workload = ctx.workload
        n = workload.num_objects
        # Source links are irrelevant (poll responses are unconstrained on
        # the source side per the paper); zero-capacity placeholders.
        self.topology = ctx.build_topology(
            self.cache_bandwidth,
            [ConstantBandwidth(0.0)] * workload.num_sources)
        self.topology.set_lazy_links(self.scheduling == "event")
        self.caches = []
        for k in range(self.topology.num_caches):
            cache = CacheNode(ctx.objects, ctx.metric, self.topology,
                              collector=ctx.collector,
                              clock=lambda: ctx.sim.now, cache_id=k)
            cache.set_poll_handler(self._on_poll_response)
            self.caches.append(cache)
        for j in range(workload.num_sources):
            self.topology.set_source_receiver(j, self._on_source_message)

        if self.variant == "cgm1":
            self.estimators = [LastUpdateAgeEstimator() for _ in range(n)]
        else:
            self.estimators = [BinaryChangeEstimator() for _ in range(n)]
        self._last_poll_time = np.zeros(n)
        self._last_poll_count = np.zeros(n, dtype=np.int64)

        # Until estimates exist, poll uniformly across all objects.
        budget = self.poll_budget()
        rng = ctx.rngs.stream("cgm-poller")
        uniform = np.full(n, budget / n if n else 0.0)
        self.scheduler.set_frequencies(uniform, 0.0, rng)
        self._rng = rng

        ctx.sim.every(ctx.dt, self.topology.on_network_tick,
                      phase=Phase.NETWORK)
        ctx.sim.every(ctx.dt, self._on_cache_tick, phase=Phase.CACHE)
        ctx.sim.every(self.resolve_interval, self._resolve,
                      phase=Phase.CACHE)

    def poll_budget(self) -> float:
        """Total poll frequency affordable on the cache link."""
        return self.cache_bandwidth.mean_rate / self.messages_per_refresh

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    def _on_cache_tick(self, now: float) -> None:
        assert self.caches and self.topology is not None
        for cache in self.caches:
            cache.on_tick(now)
        for index in self.scheduler.due(now):
            obj = self._ctx.objects[index]
            request = PollRequest(
                source_id=obj.source_id, sent_at=now, object_index=index,
                cache_id=self.topology.primary_cache_of(obj.source_id))
            if self.topology.send_downstream(request):
                self._polls_sent += 1
                self.scheduler.reschedule(index, now)
            else:
                # Out of credit: retry next tick without losing the slot.
                self.scheduler.reschedule(index, now, delay=self._ctx.dt)

    def _on_source_message(self, message: Message) -> None:
        """A source answers a poll immediately (no source-side limit)."""
        if not isinstance(message, PollRequest):
            return
        ctx = self._ctx
        assert ctx is not None and self.topology is not None
        now = ctx.sim.now
        obj = ctx.objects[message.object_index]
        changed = bool(
            obj.update_count > self._last_poll_count[obj.index])
        response = PollResponse(
            source_id=obj.source_id,
            sent_at=now,
            cache_id=message.cache_id,  # answer the cache that asked
            object_index=obj.index,
            value=obj.value,
            update_count=obj.update_count,
            changed=changed,
            last_update_time=(obj.last_update_time if self.variant == "cgm1"
                              and changed else None),
        )
        self.topology.send_upstream_unconstrained(response)

    def _on_poll_response(self, response: PollResponse, now: float) -> None:
        index = response.object_index
        obj = self._ctx.objects[index]
        obj.apply_refresh(now, response.value, response.update_count,
                          self._ctx.metric)
        self._ctx.collector.record(index, now, obj.truth.divergence)
        interval = now - float(self._last_poll_time[index])
        self.estimators[index].observe_poll(
            poll_time=now, changed=response.changed,
            last_update_time=response.last_update_time, interval=interval)
        self._last_poll_time[index] = now
        self._last_poll_count[index] = response.update_count

    # ------------------------------------------------------------------
    # Re-allocation
    # ------------------------------------------------------------------
    def estimated_rates(self) -> np.ndarray:
        """Current rate estimates (unobserved objects fall back to the mean)."""
        estimates = [est.estimate() for est in self.estimators]
        known = [e for e in estimates if e is not None]
        fallback = float(np.mean(known)) if known else 0.1
        return np.array([fallback if e is None else e for e in estimates])

    def _resolve(self, now: float) -> None:
        freqs = solve_refresh_frequencies(self.estimated_rates(),
                                          self.poll_budget())
        self.scheduler.set_frequencies(freqs, now, self._rng)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def refreshes(self) -> int:
        """Every delivered poll response refreshes the cached copy."""
        return sum(cache.poll_responses for cache in self.caches)

    def poll_messages(self) -> int:
        """Coordination overhead: the request half of each round trip.

        Responses carry the refreshed value, so they are counted as useful
        refresh traffic rather than overhead.
        """
        return self._polls_sent

    def messages_total(self) -> int:
        return self.topology.cache_messages_total() if self.topology else 0

    def extras(self) -> dict:
        true_rates = np.asarray(self._ctx.workload.rates, dtype=float)
        estimates = self.estimated_rates()
        mask = true_rates > 0
        rel_err = np.abs(estimates[mask] - true_rates[mask]) / true_rates[mask]
        return {
            "polls_sent": self._polls_sent,
            "rate_estimate_mean_rel_error": (float(np.mean(rel_err))
                                             if mask.any() else 0.0),
        }
