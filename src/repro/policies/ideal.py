"""The idealized cooperative scheduler (paper Sec 3.3).

"Each time there is enough cache-side bandwidth to accept a refresh, the
object with the highest refresh priority among all objects at all sources
should be refreshed.  If the source containing the highest priority object
does not have enough source-side bandwidth available to perform the
refresh, then the object with the second highest priority overall should be
refreshed instead, and so on."

This policy is deliberately unrealistic -- it assumes free global knowledge
and zero-cost coordination -- and serves as the theoretical reference curve
("ideal cooperative" / "theoretically achievable divergence") in Figures
4-6.  Refreshes are applied instantly (no queueing) but still consume the
bandwidth budget.

With a different priority function plugged in, the same machinery realizes
the Sec 4.3 validation runs (general priority vs. the ``D * W`` strawman)
and the Sec 9 bound-minimizing scheduler.
"""

from __future__ import annotations

from repro.core.objects import DataObject
from repro.core.priority import PriorityFunction
from repro.core.tracking import PriorityTracker
from repro.network.bandwidth import BandwidthProfile
from repro.policies.base import SimulationContext, SyncPolicy
from repro.sim.events import Phase


class _CreditBucket:
    """Token-bucket bandwidth accounting for the virtual ideal links.

    Refillable at arbitrary times (the ideal scheduler reacts to every
    update, not just to ticks); the burst cap bounds how much idle capacity
    can be banked, mirroring the real links' one-tick carry-over.
    """

    __slots__ = ("profile", "credit", "burst_cap", "_last")

    def __init__(self, profile: BandwidthProfile,
                 burst_cap: float = 1.0) -> None:
        self.profile = profile
        self.credit = 0.0
        self.burst_cap = max(1.0, burst_cap)
        self._last = 0.0

    def refill(self, now: float) -> None:
        added = self.profile.capacity(self._last, now)
        self._last = now
        self.credit = min(self.credit + added, self.burst_cap)

    def take(self) -> bool:
        if self.credit >= 1.0:
            self.credit -= 1.0
            return True
        return False


class IdealCooperativePolicy(SyncPolicy):
    """Omniscient global-priority scheduling with instant refreshes.

    Parameters
    ----------
    cache_bandwidth:
        The shared refresh budget ``C(t)`` in refreshes per time unit.
    priority_fn:
        Any :class:`PriorityFunction`; the paper's general area priority by
        default behavior is chosen by the caller.
    source_bandwidths:
        Optional per-source budgets ``B_j(t)``; ``None`` means unlimited
        source-side bandwidth.
    scheduling:
        ``"event"`` (default) parks the per-tick drain while the global
        priority queue is empty -- updates re-drain immediately anyway,
        and skipped bucket refills are replayed exactly on the next drain
        (a fixed burst cap makes ``min`` caps telescope for *any*
        bandwidth profile).  ``"tick"`` drains every tick regardless.
        Time-varying priority functions always use the per-tick schedule.
    """

    name = "ideal-cooperative"

    def __init__(self, cache_bandwidth: BandwidthProfile,
                 priority_fn: PriorityFunction,
                 source_bandwidths: list[BandwidthProfile] | None = None,
                 scheduling: str = "event") -> None:
        if scheduling not in ("event", "tick"):
            raise ValueError(f"unknown scheduling mode {scheduling!r}")
        self.cache_bandwidth = cache_bandwidth
        self.priority_fn = priority_fn
        self.source_bandwidths = source_bandwidths
        self.scheduling = scheduling
        self.tracker = PriorityTracker()
        self._refreshes = 0
        self._ctx: SimulationContext | None = None
        self._cache_buckets: list[_CreditBucket] = []
        self._primary_cache: list[int] = []
        self._source_buckets: list[_CreditBucket] | None = None
        self._event_driven = False
        self._armed = False
        #: callbacks invoked as ``hook(obj, now)`` after each refresh
        self.refresh_hooks: list = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, ctx: SimulationContext) -> None:
        self._ctx = ctx
        burst = 2.0 * ctx.dt
        # One virtual credit bucket per cache node; an object's refresh
        # spends its source's *primary* cache budget, so the idealized
        # curve faces the same per-cache capacity partition as the
        # practical algorithm (budget cannot shift between caches).
        config = ctx.topology_config
        profiles = config.cache_profiles(self.cache_bandwidth)
        self._cache_buckets = [
            _CreditBucket(p, p.mean_rate * burst) for p in profiles
        ]
        assignment = config.assignment_for(ctx.workload.num_sources)
        self._primary_cache = [targets[0] for targets in assignment]
        # Object -> owning source, precomputed: the drain loop below runs
        # per refresh opportunity and must not call source_of per object.
        self._owner = ctx.workload.owner
        if self.source_bandwidths is not None:
            if len(self.source_bandwidths) != ctx.workload.num_sources:
                raise ValueError(
                    f"expected {ctx.workload.num_sources} source bandwidth "
                    f"profiles, got {len(self.source_bandwidths)}")
            self._source_buckets = [
                _CreditBucket(p, p.mean_rate * burst)
                for p in self.source_bandwidths
            ]
        self._event_driven = (self.scheduling == "event"
                              and not self.priority_fn.time_varying)
        self._armed = False
        ctx.add_update_hook(self._on_update)
        ctx.sim.every(ctx.dt, self._on_tick, phase=Phase.SOURCES)

    def _on_update(self, obj: DataObject, now: float) -> None:
        weight = self._ctx.workload.weights.weight(obj.index, now)
        priority = self.priority_fn.priority(obj, weight, now)
        self.tracker.update(obj.index, priority)
        # "Each time there is enough cache-side bandwidth to accept a
        # refresh" (Sec 3.3): the idealized scheduler reacts immediately,
        # not at the next tick.
        self._drain(now)
        if self._event_driven:
            self._armed = len(self.tracker) > 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _on_tick(self, now: float) -> None:
        if self.priority_fn.time_varying:
            self._refill(now)
            self._reprioritize_all(now)
            self._drain(now)
            return
        if self._event_driven:
            # Parked whenever the queue is empty: a tick's drain would be
            # a no-op, and the skipped bucket refills replay exactly at
            # the next drain (fixed-cap min refills telescope).
            if not self._armed:
                return
            self._drain(now)
            self._armed = len(self.tracker) > 0
            return
        self._drain(now)

    def _refill(self, now: float) -> None:
        for bucket in self._cache_buckets:
            bucket.refill(now)
        if self._source_buckets is not None:
            for bucket in self._source_buckets:
                bucket.refill(now)

    def _drain(self, now: float) -> None:
        ctx = self._ctx
        assert ctx is not None and self._cache_buckets
        self._refill(now)
        deferred: list[tuple[int, float]] = []
        while any(bucket.credit >= 1.0 for bucket in self._cache_buckets):
            top = self.tracker.pop()
            if top is None:
                break
            index, priority = top
            if priority <= 0.0:
                break
            source_id = int(self._owner[index])
            cache_bucket = self._cache_buckets[self._primary_cache[source_id]]
            if cache_bucket.credit < 1.0:
                # This object's cache partition is out of budget; the
                # next-highest priority object may live on another cache.
                deferred.append(top)
                continue
            if (self._source_buckets is not None
                    and not self._source_buckets[source_id].take()):
                # Source-side bandwidth exhausted: skip to the next-highest
                # priority object (paper Sec 3.3), revisit next tick.
                deferred.append(top)
                continue
            cache_bucket.take()
            self._apply_refresh(index, now)
        for index, priority in deferred:
            self.tracker.update(index, priority)

    def _apply_refresh(self, index: int, now: float) -> None:
        ctx = self._ctx
        obj = ctx.objects[index]
        obj.sync_views(now)
        ctx.collector.record(index, now, 0.0)
        self._refreshes += 1
        for hook in self.refresh_hooks:
            hook(obj, now)

    def _reprioritize_all(self, now: float) -> None:
        ctx = self._ctx
        weights = ctx.workload.weights
        for obj in ctx.objects:
            priority = self.priority_fn.priority(
                obj, weights.weight(obj.index, now), now)
            self.tracker.update(obj.index, priority)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def refreshes(self) -> int:
        return self._refreshes
