"""Divergence bounding (paper Sec 9).

Some applications need *guaranteed* upper bounds on divergence rather than
low expected divergence.  When object ``O_i`` has a known maximum
divergence rate ``R_i`` and a bound ``L_i`` on refresh latency, the cache
can guarantee::

    B(O_i, t) = R_i * ((t - t_last(i)) + L_i)

Minimizing the *average bound* (instead of the unknowable actual
divergence) substitutes ``B`` for ``D`` in the general priority, giving the
closed-form priority ``R_i (t - t_last)^2 / 2 * W`` -- implemented as
:class:`repro.core.priority.DivergenceBoundPriority` and schedulable by
both the idealized scheduler and the threshold algorithm.

This module adds the measurement half: :class:`BoundMeter` integrates the
realized bound exactly (it is piecewise linear between refreshes), so
experiments can compare bound-minimizing scheduling against
actual-divergence-minimizing scheduling on both objectives.
"""

from __future__ import annotations

import numpy as np

from repro.core.objects import DataObject


class BoundMeter:
    """Time-averaged divergence bound ``R ((t - t_last) + L)``.

    Hook :meth:`on_refresh` into a policy's refresh hooks; the meter
    integrates each object's bound analytically per inter-refresh segment:
    ``integral = R * (delta^2 / 2 + L * delta)`` for a segment of length
    ``delta``.
    """

    def __init__(self, max_rates: np.ndarray, latencies: np.ndarray,
                 warmup: float = 0.0) -> None:
        self.max_rates = np.asarray(max_rates, dtype=float)
        self.latencies = np.asarray(latencies, dtype=float)
        if len(self.max_rates) != len(self.latencies):
            raise ValueError("max_rates and latencies must align")
        if (self.max_rates < 0).any() or (self.latencies < 0).any():
            raise ValueError("rates and latencies must be nonnegative")
        self.warmup = warmup
        n = len(self.max_rates)
        self._last_refresh = np.zeros(n)
        self._integral = np.zeros(n)

    @property
    def num_objects(self) -> int:
        return len(self.max_rates)

    def on_refresh(self, obj: DataObject, now: float) -> None:
        """Close the current segment for ``obj`` at time ``now``."""
        self._close_segment(obj.index, now)
        self._last_refresh[obj.index] = now

    def _close_segment(self, index: int, now: float) -> None:
        start = max(self._last_refresh[index], self.warmup)
        if now <= start:
            return
        # Age at the start of the counted window (nonzero when the segment
        # straddles the warm-up boundary).
        age0 = start - self._last_refresh[index]
        delta = now - start
        rate = self.max_rates[index]
        lat = self.latencies[index]
        self._integral[index] += rate * (
            (age0 + delta) ** 2 / 2.0 - age0 ** 2 / 2.0 + lat * delta)

    def finalize(self, end_time: float) -> None:
        for index in range(self.num_objects):
            self._close_segment(index, end_time)
            self._last_refresh[index] = end_time

    def average_bound(self, end_time: float) -> float:
        """Mean per-object time-averaged bound over the measured window."""
        duration = end_time - self.warmup
        if duration <= 0:
            return 0.0
        return float(self._integral.sum()) / duration / self.num_objects


def assign_max_rates(objects: list[DataObject],
                     max_rates: np.ndarray) -> None:
    """Install known maximum divergence rates on the simulation objects.

    :class:`repro.core.priority.DivergenceBoundPriority` reads
    ``obj.max_rate``; experiment code calls this after building a context.
    """
    max_rates = np.asarray(max_rates, dtype=float)
    if len(max_rates) != len(objects):
        raise ValueError(
            f"expected {len(objects)} rates, got {len(max_rates)}")
    for obj, rate in zip(objects, max_rates):
        obj.max_rate = float(rate)
