"""Policy plumbing: the simulation context and the policy interface.

A :class:`SimulationContext` owns everything one run needs -- the event
engine, the materialized :class:`DataObject` instances, the divergence
collector and the trace replayer.  A :class:`SyncPolicy` wires its machinery
(topology, nodes, tickers) into the context in :meth:`SyncPolicy.attach`.

The same workload trace can be replayed through any policy; the collector
then yields directly comparable divergence numbers, which is exactly the
experimental design of the paper's Figures 4-6.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from typing import Sequence

from repro.core.divergence import DivergenceMetric
from repro.core.objects import DataObject
from repro.metrics.collector import DivergenceCollector
from repro.network.bandwidth import BandwidthProfile
from repro.network.topology import Topology, TopologyConfig
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry
from repro.workloads.synthetic import Workload
from repro.workloads.trace import TraceReplayer

UpdateHook = Callable[[DataObject, float], None]


class SimulationContext:
    """All shared state for one policy run over one workload.

    ``topology`` selects the cache-side network layout for every policy
    attached to this context; policies that need a network call
    :meth:`build_topology` instead of hard-wiring a star, so the same
    policy code runs unchanged on one cache or many.
    """

    def __init__(self, workload: Workload, metric: DivergenceMetric,
                 warmup: float = 0.0, dt: float = 1.0,
                 seed: int = 0,
                 topology: TopologyConfig | None = None) -> None:
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        self.workload = workload
        self.metric = metric
        self.warmup = warmup
        self.dt = dt
        self.topology_config = topology if topology is not None \
            else TopologyConfig()
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        trace = workload.trace
        owner = workload.owner  # precomputed object -> source map
        self.objects = [
            DataObject(index=i,
                       source_id=int(owner[i]),
                       rate=float(workload.rates[i]),
                       value=float(trace.initial_values[i]))
            for i in range(workload.num_objects)
        ]
        self.collector = DivergenceCollector(workload.num_objects,
                                             workload.weights,
                                             warmup=warmup)
        self._update_hooks: list[UpdateHook] = []
        self.replayer = TraceReplayer(self.sim, trace, self.apply_update)

    def build_topology(self, cache_bandwidth: BandwidthProfile,
                       source_profiles: Sequence[BandwidthProfile]
                       ) -> Topology:
        """Materialize this context's topology for a policy.

        ``cache_bandwidth`` is the *aggregate* cache-side profile; the
        configured topology splits it across its cache links (an even 1/N
        share each) so runs with different ``num_caches`` are
        budget-comparable.
        """
        return self.topology_config.build(cache_bandwidth, source_profiles)

    def add_update_hook(self, hook: UpdateHook) -> None:
        """Register a callback invoked after every applied update."""
        self._update_hooks.append(hook)

    def apply_update(self, now: float, index: int, value: float) -> None:
        """Apply one trace update and notify the policy."""
        obj = self.objects[index]
        obj.apply_update(now, value, self.metric)
        self.collector.record(index, now, obj.truth.divergence)
        for hook in self._update_hooks:
            hook(obj, now)

    def run(self, end_time: float,
            resample_interval: float | None = None) -> None:
        """Run the simulation to ``end_time`` and close the measurement.

        ``resample_interval`` adds a periodic re-break of the collector's
        integration pieces, needed for accuracy under fluctuating weights.
        The collector samples on its own cadence (vectorized over all
        objects), independent of the simulation tick.
        """
        if resample_interval is not None:
            self.collector.schedule_resample(self.sim, resample_interval)
        self.sim.run_until(end_time)
        self.collector.finalize(end_time)


class SyncPolicy(ABC):
    """A synchronization scheduling policy."""

    #: short machine-readable policy name used in configs and reports
    name: str = "abstract"

    @abstractmethod
    def attach(self, ctx: SimulationContext) -> None:
        """Wire the policy's nodes and tickers into the context."""

    # ------------------------------------------------------------------
    # Reporting hooks (defaults are fine for simple policies)
    # ------------------------------------------------------------------
    def refreshes(self) -> int:
        """Refreshes applied at the cache."""
        return 0

    def feedback_messages(self) -> int:
        return 0

    def poll_messages(self) -> int:
        return 0

    def messages_total(self) -> int:
        """All messages that crossed the (possibly virtual) cache link."""
        return self.refreshes() + self.feedback_messages() + self.poll_messages()

    def extras(self) -> dict:
        """Policy-specific diagnostics merged into the run result."""
        return {}
