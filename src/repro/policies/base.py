"""Policy plumbing: the simulation context and the policy interface.

A :class:`SimulationContext` owns everything one run needs -- the event
engine, the materialized :class:`DataObject` instances, the divergence
collector and the trace replayer.  A :class:`SyncPolicy` wires its machinery
(topology, nodes, tickers) into the context in :meth:`SyncPolicy.attach`.

The same workload trace can be replayed through any policy; the collector
then yields directly comparable divergence numbers, which is exactly the
experimental design of the paper's Figures 4-6.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

from repro.core.divergence import DivergenceMetric
from repro.core.objects import DataObject
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.retry import ReliableDelivery, RetryPolicy
from repro.metrics.collector import DivergenceCollector
from repro.network.bandwidth import BandwidthProfile
from repro.network.topology import Topology, TopologyConfig
from repro.sim.engine import Simulator
from repro.sim.events import Phase
from repro.sim.random import RngRegistry
from repro.workloads.synthetic import Workload
from repro.workloads.trace import TraceReplayer

UpdateHook = Callable[[DataObject, float], None]


class SimulationContext:
    """All shared state for one policy run over one workload.

    ``topology`` selects the cache-side network layout for every policy
    attached to this context; policies that need a network call
    :meth:`build_topology` instead of hard-wiring a star, so the same
    policy code runs unchanged on one cache or many.
    """

    def __init__(self, workload: Workload, metric: DivergenceMetric,
                 warmup: float = 0.0, dt: float = 1.0,
                 seed: int = 0,
                 topology: TopologyConfig | None = None,
                 replay: str = "batched",
                 faults: FaultPlan | None = None,
                 retry: RetryPolicy | None = None) -> None:
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        self.workload = workload
        self.metric = metric
        self.warmup = warmup
        self.dt = dt
        self.topology_config = topology if topology is not None \
            else TopologyConfig()
        self.replay = replay
        # An empty plan is normalized to None so the fault-free delivery
        # paths stay instruction-identical (the empty-plan ≡ baseline pin).
        self.faults = faults if faults is not None and not faults.is_empty() \
            else None
        self.retry = retry
        self.sim = Simulator()
        self.rngs = RngRegistry(seed)
        trace = workload.trace
        # Python scalars up front: one .tolist() per array beats a numpy
        # scalar extraction per object when m ~ 10^5.
        owners = workload.owner.tolist()
        rates = np.asarray(workload.rates, dtype=float).tolist()
        initial_values = trace.initial_values.tolist()
        self.objects = [
            DataObject(index=i, source_id=owners[i], rate=rates[i],
                       value=initial_values[i])
            for i in range(workload.num_objects)
        ]
        self.collector = DivergenceCollector(workload.num_objects,
                                             workload.weights,
                                             warmup=warmup)
        self._update_hooks: list[UpdateHook] = []
        self.replayer = TraceReplayer(self.sim, trace, self.apply_update,
                                      apply_batch=self.apply_update_batch,
                                      mode=replay)

    def build_topology(self, cache_bandwidth: BandwidthProfile,
                       source_profiles: Sequence[BandwidthProfile]
                       ) -> Topology:
        """Materialize this context's topology for a policy.

        ``cache_bandwidth`` is the *aggregate* cache-side profile; the
        configured topology splits it across its cache links (an even 1/N
        share each) so runs with different ``num_caches`` are
        budget-comparable.

        When the context carries a fault plan and/or a retry policy they
        are installed on the topology here, so every policy picks up the
        fault machinery without knowing it exists.  Crash events become
        ordinary NETWORK-phase simulator events (scheduled identically in
        tick and event mode).
        """
        topology = self.topology_config.build(cache_bandwidth,
                                              source_profiles)
        injector = None
        if self.faults is not None:
            for crash in self.faults.crashes:
                if crash.cache_id >= topology.num_caches:
                    raise ValueError(
                        f"crash cache_id {crash.cache_id} out of range for "
                        f"a {topology.num_caches}-cache topology")
            injector = FaultInjector(self.faults,
                                     clock=lambda: self.sim.now)
        reliable = None
        if self.retry is not None:
            reliable = ReliableDelivery(self.retry, self.sim,
                                        objects=self.objects)
        if injector is not None or reliable is not None:
            topology.install_faults(injector, reliable)
        if self.faults is not None:
            for crash in self.faults.crashes:
                self.sim.at(
                    crash.time,
                    lambda cid=crash.cache_id: topology.crash_cache(
                        cid, self.sim.now),
                    phase=Phase.NETWORK)
        return topology

    def add_update_hook(self, hook: UpdateHook) -> None:
        """Register a callback invoked after every applied update."""
        self._update_hooks.append(hook)

    def apply_update(self, now: float, index: int, value: float) -> None:
        """Apply one trace update and notify the policy."""
        obj = self.objects[index]
        obj.apply_update(now, value, self.metric)
        self.collector.record(index, now, obj.truth.divergence)
        for hook in self._update_hooks:
            hook(obj, now)

    def apply_update_batch(self, times: np.ndarray, indices: np.ndarray,
                           values: np.ndarray) -> None:
        """Apply a run of consecutive trace updates in one call.

        The batched replayer hands over every trace event strictly before
        the simulator's next foreign event.  With update hooks registered
        (the cooperative/ideal/competitive policies) each event must run
        the full per-event sequence -- hooks can send messages whose
        delivery reads the simulator clock -- so the hooked path loops,
        advancing ``sim.now`` per event exactly as per-event replay's
        firings did.  Hooks may mutate any policy or network state but
        must not schedule new simulator events; every built-in policy
        routes its scheduling through :class:`~repro.sim.events.WakeupSet`
        dispatchers precisely so that replay batching stays exact (see
        DESIGN.md Sec 10).

        Without hooks nothing can interleave with the batch, so the
        divergence bookkeeping for the whole run lands in one vectorized
        :meth:`DivergenceCollector.record_at
        <repro.metrics.collector.DivergenceCollector.record_at>` call;
        object state transitions stay per event (each is a tiny state
        machine), matching the per-event path bit for bit.
        """
        sim = self.sim
        objects = self.objects
        metric = self.metric
        times_list = times.tolist()
        indices_list = indices.tolist()
        values_list = values.tolist()
        if self._update_hooks:
            apply = self.apply_update
            for pos in range(len(times_list)):
                now = times_list[pos]
                sim.now = now  # advance_clock inlined (hot loop)
                apply(now, indices_list[pos], values_list[pos])
            return
        divergences = np.empty(len(times_list))
        for pos in range(len(times_list)):
            obj = objects[indices_list[pos]]
            obj.apply_update(times_list[pos], values_list[pos], metric)
            divergences[pos] = obj.truth.divergence
        self.collector.record_at(indices, times, divergences)
        sim.advance_clock(times_list[-1])

    def run(self, end_time: float,
            resample_interval: float | None = None) -> None:
        """Run the simulation to ``end_time`` and close the measurement.

        ``resample_interval`` adds a periodic re-break of the collector's
        integration pieces, needed for accuracy under fluctuating weights.
        The collector samples on its own cadence (vectorized over all
        objects), independent of the simulation tick.
        """
        if resample_interval is not None:
            self.collector.schedule_resample(self.sim, resample_interval)
        self.sim.run_until(end_time)
        self.collector.finalize(end_time)


class SyncPolicy(ABC):
    """A synchronization scheduling policy."""

    #: short machine-readable policy name used in configs and reports
    name: str = "abstract"

    @abstractmethod
    def attach(self, ctx: SimulationContext) -> None:
        """Wire the policy's nodes and tickers into the context."""

    # ------------------------------------------------------------------
    # Reporting hooks (defaults are fine for simple policies)
    # ------------------------------------------------------------------
    def refreshes(self) -> int:
        """Refreshes applied at the cache."""
        return 0

    def feedback_messages(self) -> int:
        return 0

    def poll_messages(self) -> int:
        return 0

    def messages_total(self) -> int:
        """All messages that crossed the (possibly virtual) cache link."""
        return self.refreshes() + self.feedback_messages() + self.poll_messages()

    def extras(self) -> dict:
        """Policy-specific diagnostics merged into the run result."""
        return {}
