"""Static uniform refresh allocation -- the non-adaptive baseline.

The classic strawman against which cooperative scheduling is measured:
every object is refreshed at the same frequency, round-robin per source,
regardless of update rates, weights or observed divergence.  Each source's
send rate is a static, even share of its primary cache link's mean
capacity (``C_k / m_k`` for the ``m_k`` sources owned by cache ``k``),
which is precisely the "uniform allocation" a provisioning system would
pick without divergence feedback.

Sends are real messages over the constrained topology links, so source-side
limits and cache-link congestion still apply; the cache side is a plain
:class:`CacheNode` per cache with no feedback controller.  The multi-cache
scenario experiments compare this baseline against
:class:`repro.policies.cooperative.CooperativePolicy` as caches are added.
"""

from __future__ import annotations

from repro.cache.cache import CacheNode
from repro.cache.store import CacheStore
from repro.network.bandwidth import (
    BandwidthProfile,
    replay_credit_ticks,
    ticks_until_capacity,
    ticks_until_credit,
)
from repro.network.messages import RefreshMessage
from repro.network.topology import Topology
from repro.policies.base import SimulationContext, SyncPolicy
from repro.sim.events import Phase, WakeupSet


class UniformAllocationPolicy(SyncPolicy):
    """Round-robin refreshes at a static per-source rate.

    Parameters
    ----------
    cache_bandwidth:
        Aggregate cache-side profile; the context's topology splits it
        across cache links, and each source's budget is an even share of
        its primary cache's mean rate.
    source_bandwidths:
        One profile per source; sends still respect source-side credit.
    utilization:
        Fraction of the cache-link share each source actually schedules
        (default 1.0 -- uniform allocation spends the whole budget).
    scheduling:
        ``"event"`` (default) wakes each source only on the tick its
        credit crosses one message, replaying the skipped per-tick
        accruals in the same float-operation order the tick scan used
        (bit-for-bit identical); ``"tick"`` is the full per-tick scan.
    """

    name = "uniform"

    def __init__(self, cache_bandwidth: BandwidthProfile,
                 source_bandwidths: list[BandwidthProfile],
                 utilization: float = 1.0,
                 scheduling: str = "event") -> None:
        if not 0.0 < utilization <= 1.0:
            raise ValueError(
                f"utilization must be in (0, 1], got {utilization}")
        if scheduling not in ("event", "tick"):
            raise ValueError(f"unknown scheduling mode {scheduling!r}")
        self.cache_bandwidth = cache_bandwidth
        self.source_bandwidths = source_bandwidths
        self.utilization = utilization
        self.scheduling = scheduling
        self.topology: Topology | None = None
        self.caches: list[CacheNode] = []
        self.stores: list[CacheStore] = []
        self._rates: list[float] = []
        self._credit: list[float] = []
        self._cursor: list[int] = []
        self._sent = 0
        self._ctx: SimulationContext | None = None
        self._event_driven = False
        self._tick_no = 0
        self._credit_tick: list[int] = []
        self._wakeups = WakeupSet()
        self._cache_wakeups = WakeupSet()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, ctx: SimulationContext) -> None:
        workload = ctx.workload
        if len(self.source_bandwidths) != workload.num_sources:
            raise ValueError(
                f"expected {workload.num_sources} source bandwidth "
                f"profiles, got {len(self.source_bandwidths)}")
        self._ctx = ctx
        self.topology = ctx.build_topology(self.cache_bandwidth,
                                           self.source_bandwidths)
        topology = self.topology
        self.caches = []
        self.stores = []
        for k in range(topology.num_caches):
            store = CacheStore(workload.num_objects,
                               workload.trace.initial_values)
            self.stores.append(store)
            self.caches.append(
                CacheNode(ctx.objects, ctx.metric, topology,
                          collector=ctx.collector, store=store,
                          clock=lambda: ctx.sim.now, cache_id=k))
        self._rates = []
        for j in range(workload.num_sources):
            primary = topology.primary_cache_of(j)
            peers = len(topology.owned_sources_of(primary))
            mean_rate = topology.cache_links[primary].profile.mean_rate
            self._rates.append(self.utilization * mean_rate / max(peers, 1))
        self._credit = [0.0] * workload.num_sources
        self._cursor = [0] * workload.num_sources
        self._event_driven = self.scheduling == "event"
        topology.set_lazy_links(self._event_driven)
        self._tick_no = 0
        self._credit_tick = [0] * workload.num_sources
        self._wakeups = WakeupSet()
        self._cache_wakeups = WakeupSet()
        if self._event_driven:
            for j in range(workload.num_sources):
                self._arm_crossing(j)
            for k in range(topology.num_caches):
                topology.cache_links[k].on_queue = self._make_queue_hook(k)
        ctx.sim.every(ctx.dt, topology.on_network_tick,
                      phase=Phase.NETWORK)
        ctx.sim.every(ctx.dt, self._sources_tick, phase=Phase.SOURCES)
        ctx.sim.every(ctx.dt, self._caches_tick, phase=Phase.CACHE)

    def _make_queue_hook(self, cache_id: int):
        def hook(message) -> None:
            self._cache_wakeups.arm(cache_id, message.sent_at)
        return hook

    # ------------------------------------------------------------------
    # Scheduling
    #
    # Event mode keys wakeups by *tick number* (exact integers, immune to
    # accumulated-float drift in tick times).  Skipped per-tick credit
    # accruals are replayed at wake time with the identical sequence of
    # ``min(credit + earned, cap)`` operations the tick scan performed --
    # float-for-float the same credits, so send ticks match exactly.  The
    # replay short-circuits once the credit saturates at the cap (parked
    # or bandwidth-blocked sources), keeping it O(gap between sends).
    # ------------------------------------------------------------------
    def _sources_tick(self, now: float) -> None:
        ctx = self._ctx
        assert ctx is not None and self.topology is not None
        self._tick_no += 1
        if not self._event_driven:
            for j in range(ctx.workload.num_sources):
                self._accrue_one_tick(j, ctx.dt)
                self._send_while_credit(j, now)
            return
        for j in self._wakeups.pop_due(self._tick_no):
            self._replay_accrual(j, ctx.dt)
            blocked = self._send_while_credit(j, now)
            if blocked:
                self._arm_blocked(j, now)
            else:
                self._arm_crossing(j)

    def _accrue_one_tick(self, j: int, dt: float) -> None:
        # Accrue this tick's share; cap banked credit at one tick's
        # worth plus one message, mirroring the links' burst cap.
        earned = self._rates[j] * dt
        self._credit[j] = min(self._credit[j] + earned,
                              max(1.0, earned) + earned)
        self._credit_tick[j] = self._tick_no

    def _replay_accrual(self, j: int, dt: float) -> None:
        """Catch up the per-tick accruals skipped since the last wake."""
        earned = self._rates[j] * dt
        self._credit[j] = replay_credit_ticks(
            self._credit[j], earned, max(1.0, earned) + earned,
            self._tick_no - self._credit_tick[j])
        self._credit_tick[j] = self._tick_no

    def _send_while_credit(self, j: int, now: float) -> bool:
        """Round-robin sends while credit lasts; True when send-blocked."""
        ctx = self._ctx
        per_source = ctx.workload.objects_per_source
        while self._credit[j] >= 1.0:
            local = self._cursor[j] % per_source
            obj = ctx.objects[j * per_source + local]
            message = RefreshMessage(
                source_id=j, sent_at=now, object_index=obj.index,
                value=obj.value, update_count=obj.update_count)
            if not self.topology.send_upstream(message):
                return True  # out of source-side bandwidth this tick
            obj.mark_sent(now)
            self._cursor[j] += 1
            self._credit[j] -= 1.0
            self._sent += 1
        return False

    def _arm_blocked(self, j: int, now: float) -> None:
        """Re-arm a source whose *link* (not its token bucket) is dry.

        Steady links retry next tick, as before.  On a trace link the
        blocked spell can span a whole outage; the crossing tick is
        solved on the profile's cumulative array instead of polled for.
        The prediction is conservative (never late, at most one tick
        early), so the eventual send lands on exactly the tick the
        per-tick retry loop would have chosen; an early wake just finds
        the link still dry and re-arms.  ``None`` -- the link can never
        afford another message -- parks the source, which the retry loop
        would have done too, one failed send per tick at a time.
        """
        link = self.topology.source_links[j]
        ticks = 1
        if link._trace is not None:
            ticks = ticks_until_capacity(link.profile, now, self._ctx.dt,
                                         1.0 - link.credit)
            if ticks is None:
                return
        self._wakeups.arm(j, self._tick_no + ticks)

    def _arm_crossing(self, j: int) -> None:
        """Arm source ``j`` at the tick its credit next reaches 1.0.

        A ``None`` crossing (zero rate, or a float fixpoint below one
        message) parks the source forever -- the tick scan would stall
        on it identically.
        """
        earned = self._rates[j] * self._ctx.dt
        ticks = ticks_until_credit(self._credit[j], earned,
                                   max(1.0, earned) + earned)
        if ticks is not None:
            self._wakeups.arm(j, self._tick_no + ticks)

    def _caches_tick(self, now: float) -> None:
        if not self._event_driven:
            for cache in self.caches:
                cache.on_tick(now)
            return
        # Without a feedback controller the cache tick only re-drains its
        # link queue; wake only the caches whose link actually queued.
        for k in self._cache_wakeups.pop_due(now):
            cache = self.caches[k]
            cache.on_tick(now)
            if self.topology.cache_links[k].queue:
                self._cache_wakeups.arm(k, now)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def refreshes(self) -> int:
        return sum(cache.refreshes_applied for cache in self.caches)

    def messages_total(self) -> int:
        return self.topology.cache_messages_total() if self.topology else 0

    def extras(self) -> dict:
        extras = {
            "refreshes_sent": self._sent,
            "cache_queue_peak": (self.topology.cache_queued_peak()
                                 if self.topology else 0),
        }
        if self.topology is not None and self.topology.num_caches > 1:
            extras["topology"] = self.topology.telemetry(
                now=self._ctx.sim.now)
        return extras
