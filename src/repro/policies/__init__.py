"""Synchronization scheduling policies."""

from repro.policies.base import SimulationContext, SyncPolicy
from repro.policies.bounded import BoundMeter, assign_max_rates
from repro.policies.cache_driven import (
    CGMPollingPolicy,
    IdealCacheBasedPolicy,
)
from repro.policies.competitive import CompetitivePolicy
from repro.policies.cooperative import CooperativePolicy
from repro.policies.ideal import IdealCooperativePolicy
from repro.policies.uniform import UniformAllocationPolicy

__all__ = [
    "BoundMeter",
    "CGMPollingPolicy",
    "CompetitivePolicy",
    "CooperativePolicy",
    "IdealCacheBasedPolicy",
    "IdealCooperativePolicy",
    "SimulationContext",
    "SyncPolicy",
    "UniformAllocationPolicy",
    "assign_max_rates",
]
