"""The paper's practical algorithm: threshold-based source cooperation.

This policy assembles the full Sec 5 machinery over the message-level
network substrate:

* one :class:`SourceNode` per source with a lazy priority queue, a
  :class:`ThresholdController` (``alpha``/``omega``/``gamma`` dynamics) and
  a priority monitor (exact triggers by default, sampling optional);
* one :class:`CacheNode` per cache node in the configured topology, each
  applying whatever refreshes arrive on its link and running its own
  :class:`FeedbackController`, spending surplus link bandwidth on positive
  feedback to the highest-threshold sources it is primary for;
* a :class:`Topology` (the paper's star by default, or a sharded /
  replicated :class:`MultiCacheTopology` via the context's
  :class:`TopologyConfig`) whose cache links are where congestion,
  queueing delay and flooding actually happen.

Every coordination byte is accounted: refresh messages carry the
piggybacked thresholds, feedback messages consume real bandwidth, and the
run result separates useful refreshes from overhead.
"""

from __future__ import annotations

import math

from repro.cache.cache import CacheNode
from repro.cache.feedback import FeedbackController
from repro.cache.store import CacheStore
from repro.core.divergence import DivergenceMetric
from repro.core.objects import DataObject
from repro.core.priority import PriorityFunction
from repro.core.threshold import DEFAULT_ALPHA, DEFAULT_OMEGA, ThresholdController
from repro.core.tracking import PriorityTracker
from repro.network.bandwidth import BandwidthProfile
from repro.network.topology import Topology
from repro.policies.base import SimulationContext, SyncPolicy
from repro.sim.events import Phase, WakeupSet
from repro.source.batching import BatchingSource
from repro.source.monitor import SamplingMonitor, TriggerMonitor
from repro.source.source import SourceNode


class CooperativePolicy(SyncPolicy):
    """Sec 5's adaptive threshold-setting algorithm, end to end.

    Parameters
    ----------
    cache_bandwidth:
        Aggregate cache-side profile ``C(t)``; the context's topology
        splits it evenly across its cache links.
    source_bandwidths:
        One profile per source (``B_j(t)``).
    priority_fn:
        Refresh priority function shared by all sources.
    alpha, omega:
        Threshold increase / decrease factors (paper's best: 1.1 and 10).
    initial_threshold:
        Starting ``T_j`` for every source; any positive value works after
        warm-up.
    feedback_period:
        Expected feedback period ``P_feedback`` for the ``gamma`` factor;
        ``None`` derives the paper's rough estimate per cache
        (``sources at that cache / mean cache-link bandwidth``).
    monitor:
        ``"trigger"`` (exact, default) or ``"sampling"`` (Sec 8.2.1).
    sampling_interval, predictive_sampling:
        Sampling-monitor knobs (ignored for trigger monitoring).
    reprioritize_interval:
        Optional periodic re-computation of all priorities, for fluctuating
        weights or time-varying priority functions.
    batch_size, batch_timeout:
        When ``batch_size > 1``, sources package that many refreshes into
        each message (Sec 10.1 future work), flushing a partial batch
        after ``batch_timeout``.
    feedback_ttl:
        Staleness bound on feedback (graceful degradation under faults):
        a source that has heard no feedback for this long stops treating
        the silence as flood pressure and instead decays its threshold
        by ``1/omega`` per TTL elapsed, drifting back toward the uniform
        allocation.  ``None`` (default) keeps the paper's pure protocol.
    rebalance:
        A :class:`~repro.rebalance.controller.RebalanceConfig` to run a
        shard rebalancer over this policy's caches (multi-cache sharded
        topologies; inert on a star).  ``None`` (default) leaves every
        code path exactly as without the feature -- the same pin
        discipline as the fault injector's empty plan.
    scheduling:
        ``"event"`` (default): sources and caches are woken per entity by
        a :class:`~repro.sim.events.WakeupSet` only when they have work
        (pending bandwidth-blocked refreshes, sampling deadlines, feedback
        targets, queued messages), and idle steady-profile source links
        skip the network tick.  ``"tick"``: the paper-literal full scan of
        every node every ``dt`` (the degenerate "everyone wakes every dt"
        schedule).  Both produce bit-for-bit identical results; the
        equivalence tests pin that.
    """

    name = "cooperative"

    def __init__(self, cache_bandwidth: BandwidthProfile,
                 source_bandwidths: list[BandwidthProfile],
                 priority_fn: PriorityFunction,
                 alpha: float = DEFAULT_ALPHA,
                 omega: float = DEFAULT_OMEGA,
                 initial_threshold: float = 1.0,
                 feedback_period: float | None = None,
                 monitor: str = "trigger",
                 sampling_interval: float = 10.0,
                 predictive_sampling: bool = False,
                 reprioritize_interval: float | None = None,
                 batch_size: int = 1,
                 batch_timeout: float = 5.0,
                 scheduling: str = "event",
                 feedback_ttl: float | None = None,
                 rebalance=None) -> None:
        if scheduling not in ("event", "tick"):
            raise ValueError(f"unknown scheduling mode {scheduling!r}")
        self.scheduling = scheduling
        self.cache_bandwidth = cache_bandwidth
        self.source_bandwidths = source_bandwidths
        self.priority_fn = priority_fn
        self.alpha = alpha
        self.omega = omega
        self.initial_threshold = initial_threshold
        self.feedback_period = feedback_period
        self.monitor_kind = monitor
        self.sampling_interval = sampling_interval
        self.predictive_sampling = predictive_sampling
        self.reprioritize_interval = reprioritize_interval
        self.batch_size = batch_size
        self.batch_timeout = batch_timeout
        self.feedback_ttl = feedback_ttl
        self.rebalance = rebalance
        self.rebalancer = None
        self.topology: Topology | None = None
        self.caches: list[CacheNode] = []
        self.stores: list[CacheStore] = []
        self.feedbacks: list[FeedbackController] = []
        self.sources: list[SourceNode] = []
        self._event_driven = False
        self._source_wakeups = WakeupSet()
        self._cache_wakeups = WakeupSet()

    # ------------------------------------------------------------------
    # Single-cache conveniences (the star special case)
    # ------------------------------------------------------------------
    @property
    def cache(self) -> CacheNode | None:
        return self.caches[0] if self.caches else None

    @property
    def store(self) -> CacheStore | None:
        return self.stores[0] if self.stores else None

    @property
    def feedback(self) -> FeedbackController | None:
        return self.feedbacks[0] if self.feedbacks else None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, ctx: SimulationContext) -> None:
        workload = ctx.workload
        if len(self.source_bandwidths) != workload.num_sources:
            raise ValueError(
                f"expected {workload.num_sources} source bandwidth "
                f"profiles, got {len(self.source_bandwidths)}")
        self.topology = ctx.build_topology(self.cache_bandwidth,
                                           self.source_bandwidths)
        topology = self.topology
        self.caches = []
        self.stores = []
        self.feedbacks = []
        plane = topology.delivery_plane
        for k in range(topology.num_caches):
            owned = topology.owned_sources_of(k)
            # Per-source refresh value under this delivery plane: r-way
            # replicated sources are r times cheaper per unit of
            # divergence removed under multicast.  All-ones collapses to
            # None so the unicast ranking arithmetic is untouched.
            gains = [plane.feedback_gain(len(topology.caches_of(j)))
                     for j in owned]
            feedback = FeedbackController(
                topology, self.omega, cache_id=k,
                source_ids=owned,
                gains=None if all(g == 1.0 for g in gains) else gains)
            store = CacheStore(workload.num_objects,
                               workload.trace.initial_values)
            cache = CacheNode(ctx.objects, ctx.metric, topology,
                              collector=ctx.collector, store=store,
                              feedback=feedback,
                              clock=lambda: ctx.sim.now, cache_id=k)
            self.feedbacks.append(feedback)
            self.stores.append(store)
            self.caches.append(cache)

        per_source = workload.objects_per_source
        self.sources = []
        # The derived feedback period depends only on a source's primary
        # cache, so compute it once per cache instead of once per source
        # (at m ~ 10^5 the per-source log/len arithmetic is real money).
        period_by_cache: dict[int, float | None] = {}
        for j in range(workload.num_sources):
            objects = ctx.objects[j * per_source:(j + 1) * per_source]
            primary = topology.primary_cache_of(j)
            if primary not in period_by_cache:
                period_by_cache[primary] = self._feedback_period_for(j, ctx)
            tracker = PriorityTracker()
            threshold = ThresholdController(
                initial=self.initial_threshold, alpha=self.alpha,
                omega=self.omega,
                feedback_period=period_by_cache[primary],
                feedback_ttl=self.feedback_ttl)
            monitor = self._build_monitor(tracker, workload.weights,
                                          ctx.metric, threshold)
            if self.batch_size > 1:
                source: SourceNode = BatchingSource(
                    j, objects, monitor, threshold, topology,
                    batch_size=self.batch_size,
                    batch_timeout=self.batch_timeout)
            else:
                source = SourceNode(j, objects, monitor, threshold,
                                    topology)
            self.sources.append(source)
            topology.set_source_receiver(
                j, self._make_receiver(source, ctx))
            if topology.reliable is not None:
                topology.reliable.register_sender(j, source)

        # Time-varying priorities change every object's priority every
        # tick, so there is nothing to schedule around: fall back to the
        # degenerate everyone-wakes-every-dt schedule for them.
        event_requested = self.scheduling == "event"
        self._event_driven = event_requested and not any(
            source.monitor.wants_tick for source in self.sources)
        topology.set_lazy_links(event_requested)
        self._source_wakeups = WakeupSet()
        self._cache_wakeups = WakeupSet()
        if self._event_driven:
            for j, source in enumerate(self.sources):
                source.monitor.prime(source.objects)
                self._rearm_source(j, source, 0.0, blocked=False)
            for k in range(topology.num_caches):
                self._cache_wakeups.arm(k, 0.0)
                self.caches[k].activity_hook = self._make_cache_activity(k)
                topology.cache_links[k].on_queue = self._make_queue_hook(k)

        ctx.add_update_hook(self._on_update)
        ctx.sim.every(ctx.dt, topology.on_network_tick,
                      phase=Phase.NETWORK)
        ctx.sim.every(ctx.dt, self._sources_tick, phase=Phase.SOURCES)
        ctx.sim.every(ctx.dt, self._caches_tick, phase=Phase.CACHE)
        if self.reprioritize_interval is not None:
            ctx.sim.every(self.reprioritize_interval,
                          self._reprioritize_all, phase=Phase.SOURCES)
        self.rebalancer = None
        if self.rebalance is not None:
            # Local import: the rebalance package imports cache/topology
            # modules, and policies must stay importable without it.
            from repro.rebalance.controller import Rebalancer
            self.rebalancer = Rebalancer(self.rebalance, topology,
                                         self.caches)
            self.rebalancer.install(ctx)
        self._ctx = ctx

    def _feedback_period_for(self, source_id: int,
                             ctx: SimulationContext) -> float | None:
        """Expected feedback period for one source's ``gamma`` factor.

        The paper's rough estimate is m / mean cache bandwidth, taken here
        per cache node: the sources sharing the primary cache of
        ``source_id`` over that link's mean rate.  At the alpha/omega
        equilibrium one feedback balances ln(omega)/ln(alpha) refreshes
        (~24 at the default settings), so the *expected* period between
        feedback messages to one source is that many times longer.
        Scaling the estimate (and flooring it at a few ticks) keeps gamma
        measuring genuine feedback droughts across bandwidth regimes --
        the paper notes the estimate "need only be a rough estimate".
        """
        if self.feedback_period is not None:
            return self.feedback_period
        assert self.topology is not None
        primary = self.topology.primary_cache_of(source_id)
        mean_rate = self.topology.cache_links[primary].profile.mean_rate
        if mean_rate <= 0:
            return None
        slack = math.log(self.omega) / math.log(self.alpha)
        peers = len(self.topology.owned_sources_of(primary))
        return max(slack * peers / mean_rate, 5.0 * ctx.dt)

    def _build_monitor(self, tracker: PriorityTracker, weights, metric:
                       DivergenceMetric, threshold: ThresholdController):
        if self.monitor_kind == "trigger":
            return TriggerMonitor(tracker, self.priority_fn, weights)
        if self.monitor_kind == "sampling":
            return SamplingMonitor(
                tracker, self.priority_fn, weights, metric,
                interval=self.sampling_interval,
                predictive=self.predictive_sampling,
                threshold=lambda: threshold.value)
        raise ValueError(f"unknown monitor kind {self.monitor_kind!r}")

    def _make_receiver(self, source: SourceNode, ctx: SimulationContext):
        def receive(message):
            now = ctx.sim.now
            blocked = source.on_message(message, now)
            if self._event_driven:
                self._rearm_source(source.source_id, source, now, blocked)
        return receive

    def _make_cache_activity(self, cache_id: int):
        def hook(now: float) -> None:
            self._cache_wakeups.arm(cache_id, now)
        return hook

    def _make_queue_hook(self, cache_id: int):
        def hook(message) -> None:
            self._cache_wakeups.arm(cache_id, message.sent_at)
        return hook

    # ------------------------------------------------------------------
    # Event routing
    #
    # In event mode the per-tick dispatchers below wake only the entities
    # whose WakeupSet entry is due, in the same ascending-id order the
    # full scans used; every source entry point (update, feedback, wake)
    # re-arms the source's wakeup from its blocked status and its
    # monitor's next sampling deadline.  A source is parked exactly when
    # a tick-scan visit would have been a no-op, which is what makes the
    # two schedules bit-for-bit identical.
    # ------------------------------------------------------------------
    def _on_update(self, obj: DataObject, now: float) -> None:
        source = self.sources[obj.source_id]
        blocked = source.on_update(obj, now)
        if self._event_driven:
            self._rearm_source(obj.source_id, source, now, blocked)

    def _rearm_source(self, j: int, source: SourceNode, now: float,
                      blocked: bool) -> None:
        if blocked:
            # Out of bandwidth with over-threshold work: credit accrues by
            # the next tick, so wake at the next dispatcher fire.
            self._source_wakeups.arm(j, now)
        next_wake = source.monitor.next_wake_time()
        if next_wake is not None:
            self._source_wakeups.arm(j, next_wake)
        decay = source.threshold.next_decay_time()
        if decay is not None:
            # TTL decay must fire even while the source is otherwise
            # parked, or a blacked-out event-mode source would never
            # drift -- breaking tick/event equivalence.
            self._source_wakeups.arm(j, decay)

    def _sources_tick(self, now: float) -> None:
        if not self._event_driven:
            for source in self.sources:
                source.on_tick(now)
            return
        for j in self._source_wakeups.pop_due(now, eps=1e-12):
            source = self.sources[j]
            blocked = source.on_wake(now)
            self._rearm_source(j, source, now, blocked)

    def _caches_tick(self, now: float) -> None:
        if not self._event_driven:
            for cache in self.caches:
                cache.on_tick(now)
            return
        for k in self._cache_wakeups.pop_due(now):
            cache = self.caches[k]
            cache.on_tick(now)
            if self._cache_needs_tick(cache):
                self._cache_wakeups.arm(k, now)

    def _cache_needs_tick(self, cache: CacheNode) -> bool:
        """A cache keeps its per-tick wakeup while it has queued messages
        to drain or feedback-eligible sources to pay surplus credit to."""
        assert self.topology is not None
        if self.topology.cache_links[cache.cache_id].queue:
            return True
        return cache.feedback is not None and cache.feedback.has_targets()

    def _reprioritize_all(self, now: float) -> None:
        for j, source in enumerate(self.sources):
            source.monitor.refresh_priorities(source.objects, now)
            if self._event_driven and len(source.monitor.tracker):
                # Re-evaluated priorities may now clear the threshold; the
                # tick-scan schedule would notice at the next tick's drain.
                self._source_wakeups.arm(j, now)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def refreshes(self) -> int:
        return sum(cache.refreshes_applied for cache in self.caches)

    def feedback_messages(self) -> int:
        return sum(fb.feedback_sent for fb in self.feedbacks)

    def messages_total(self) -> int:
        if self.topology is None:
            return 0
        return self.topology.cache_messages_total()

    def extras(self) -> dict:
        thresholds = [s.threshold.value for s in self.sources]
        sent = sum(s.refreshes_sent for s in self.sources)
        extras = {
            "mean_threshold": (sum(thresholds) / len(thresholds)
                               if thresholds else 0.0),
            "refreshes_sent": sent,
            "refreshes_in_flight": (sent - self.refreshes()),
            "cache_queue_peak": (self.topology.cache_queued_peak()
                                 if self.topology else 0),
        }
        if self.topology is not None and self.topology.num_caches > 1:
            extras["topology"] = self.topology.telemetry(
                now=self._ctx.sim.now)
        if self.rebalancer is not None:
            extras["rebalance"] = self.rebalancer.telemetry()
        return extras
