"""The paper's practical algorithm: threshold-based source cooperation.

This policy assembles the full Sec 5 machinery over the message-level
network substrate:

* one :class:`SourceNode` per source with a lazy priority queue, a
  :class:`ThresholdController` (``alpha``/``omega``/``gamma`` dynamics) and
  a priority monitor (exact triggers by default, sampling optional);
* a :class:`CacheNode` that applies whatever refreshes arrive and runs the
  :class:`FeedbackController`, spending surplus cache-link bandwidth on
  positive feedback to the highest-threshold sources;
* a :class:`StarTopology` whose shared cache link is where congestion,
  queueing delay and flooding actually happen.

Every coordination byte is accounted: refresh messages carry the
piggybacked thresholds, feedback messages consume real bandwidth, and the
run result separates useful refreshes from overhead.
"""

from __future__ import annotations

import math

from repro.cache.cache import CacheNode
from repro.cache.feedback import FeedbackController
from repro.cache.store import CacheStore
from repro.core.divergence import DivergenceMetric
from repro.core.objects import DataObject
from repro.core.priority import PriorityFunction
from repro.core.threshold import DEFAULT_ALPHA, DEFAULT_OMEGA, ThresholdController
from repro.core.tracking import PriorityTracker
from repro.network.bandwidth import BandwidthProfile
from repro.network.topology import StarTopology
from repro.policies.base import SimulationContext, SyncPolicy
from repro.sim.events import Phase
from repro.source.batching import BatchingSource
from repro.source.monitor import SamplingMonitor, TriggerMonitor
from repro.source.source import SourceNode


class CooperativePolicy(SyncPolicy):
    """Sec 5's adaptive threshold-setting algorithm, end to end.

    Parameters
    ----------
    cache_bandwidth:
        Profile of the shared cache-side link ``C(t)``.
    source_bandwidths:
        One profile per source (``B_j(t)``).
    priority_fn:
        Refresh priority function shared by all sources.
    alpha, omega:
        Threshold increase / decrease factors (paper's best: 1.1 and 10).
    initial_threshold:
        Starting ``T_j`` for every source; any positive value works after
        warm-up.
    feedback_period:
        Expected feedback period ``P_feedback`` for the ``gamma`` factor;
        ``None`` derives the paper's rough estimate
        ``num_sources / mean cache bandwidth``.
    monitor:
        ``"trigger"`` (exact, default) or ``"sampling"`` (Sec 8.2.1).
    sampling_interval, predictive_sampling:
        Sampling-monitor knobs (ignored for trigger monitoring).
    reprioritize_interval:
        Optional periodic re-computation of all priorities, for fluctuating
        weights or time-varying priority functions.
    batch_size, batch_timeout:
        When ``batch_size > 1``, sources package that many refreshes into
        each message (Sec 10.1 future work), flushing a partial batch
        after ``batch_timeout``.
    """

    name = "cooperative"

    def __init__(self, cache_bandwidth: BandwidthProfile,
                 source_bandwidths: list[BandwidthProfile],
                 priority_fn: PriorityFunction,
                 alpha: float = DEFAULT_ALPHA,
                 omega: float = DEFAULT_OMEGA,
                 initial_threshold: float = 1.0,
                 feedback_period: float | None = None,
                 monitor: str = "trigger",
                 sampling_interval: float = 10.0,
                 predictive_sampling: bool = False,
                 reprioritize_interval: float | None = None,
                 batch_size: int = 1,
                 batch_timeout: float = 5.0) -> None:
        self.cache_bandwidth = cache_bandwidth
        self.source_bandwidths = source_bandwidths
        self.priority_fn = priority_fn
        self.alpha = alpha
        self.omega = omega
        self.initial_threshold = initial_threshold
        self.feedback_period = feedback_period
        self.monitor_kind = monitor
        self.sampling_interval = sampling_interval
        self.predictive_sampling = predictive_sampling
        self.reprioritize_interval = reprioritize_interval
        self.batch_size = batch_size
        self.batch_timeout = batch_timeout
        self.topology: StarTopology | None = None
        self.cache: CacheNode | None = None
        self.store: CacheStore | None = None
        self.sources: list[SourceNode] = []
        self.feedback: FeedbackController | None = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, ctx: SimulationContext) -> None:
        workload = ctx.workload
        if len(self.source_bandwidths) != workload.num_sources:
            raise ValueError(
                f"expected {workload.num_sources} source bandwidth "
                f"profiles, got {len(self.source_bandwidths)}")
        self.topology = StarTopology(self.cache_bandwidth,
                                     self.source_bandwidths)
        feedback_period = self.feedback_period
        if feedback_period is None:
            # The paper's rough estimate is m / mean cache bandwidth; at
            # the alpha/omega equilibrium one feedback balances
            # ln(omega)/ln(alpha) refreshes (~24 at the default settings),
            # so the *expected* period between feedback messages to one
            # source is that many times longer.  Scaling the estimate (and
            # flooring it at a few ticks) keeps gamma measuring genuine
            # feedback droughts across bandwidth regimes -- the paper notes
            # the estimate "need only be a rough estimate".
            mean_rate = self.cache_bandwidth.mean_rate
            if mean_rate > 0:
                slack = math.log(self.omega) / math.log(self.alpha)
                feedback_period = max(
                    slack * workload.num_sources / mean_rate, 5.0 * ctx.dt)
        self.feedback = FeedbackController(self.topology, self.omega)
        self.store = CacheStore(workload.num_objects,
                                workload.trace.initial_values)
        self.cache = CacheNode(ctx.objects, ctx.metric, self.topology,
                               collector=ctx.collector, store=self.store,
                               feedback=self.feedback,
                               clock=lambda: ctx.sim.now)

        per_source = workload.objects_per_source
        self.sources = []
        for j in range(workload.num_sources):
            objects = ctx.objects[j * per_source:(j + 1) * per_source]
            tracker = PriorityTracker()
            threshold = ThresholdController(
                initial=self.initial_threshold, alpha=self.alpha,
                omega=self.omega, feedback_period=feedback_period)
            monitor = self._build_monitor(tracker, workload.weights,
                                          ctx.metric, threshold)
            if self.batch_size > 1:
                source: SourceNode = BatchingSource(
                    j, objects, monitor, threshold, self.topology,
                    batch_size=self.batch_size,
                    batch_timeout=self.batch_timeout)
            else:
                source = SourceNode(j, objects, monitor, threshold,
                                    self.topology)
            self.sources.append(source)
            self.topology.set_source_receiver(
                j, self._make_receiver(source, ctx))

        ctx.add_update_hook(self._on_update)
        ctx.sim.every(ctx.dt, self.topology.on_network_tick,
                      phase=Phase.NETWORK)
        ctx.sim.every(ctx.dt, self._sources_tick, phase=Phase.SOURCES)
        ctx.sim.every(ctx.dt, self.cache.on_tick, phase=Phase.CACHE)
        if self.reprioritize_interval is not None:
            ctx.sim.every(self.reprioritize_interval,
                          self._reprioritize_all, phase=Phase.SOURCES)
        self._ctx = ctx

    def _build_monitor(self, tracker: PriorityTracker, weights, metric:
                       DivergenceMetric, threshold: ThresholdController):
        if self.monitor_kind == "trigger":
            return TriggerMonitor(tracker, self.priority_fn, weights)
        if self.monitor_kind == "sampling":
            return SamplingMonitor(
                tracker, self.priority_fn, weights, metric,
                interval=self.sampling_interval,
                predictive=self.predictive_sampling,
                threshold=lambda: threshold.value)
        raise ValueError(f"unknown monitor kind {self.monitor_kind!r}")

    @staticmethod
    def _make_receiver(source: SourceNode, ctx: SimulationContext):
        def receive(message):
            source.on_message(message, ctx.sim.now)
        return receive

    # ------------------------------------------------------------------
    # Event routing
    # ------------------------------------------------------------------
    def _on_update(self, obj: DataObject, now: float) -> None:
        self.sources[obj.source_id].on_update(obj, now)

    def _sources_tick(self, now: float) -> None:
        for source in self.sources:
            source.on_tick(now)

    def _reprioritize_all(self, now: float) -> None:
        for source in self.sources:
            source.monitor.refresh_priorities(source.objects, now)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def refreshes(self) -> int:
        return self.cache.refreshes_applied if self.cache else 0

    def feedback_messages(self) -> int:
        return self.feedback.feedback_sent if self.feedback else 0

    def messages_total(self) -> int:
        if self.topology is None:
            return 0
        return self.topology.cache_link.total_sent

    def extras(self) -> dict:
        thresholds = [s.threshold.value for s in self.sources]
        sent = sum(s.refreshes_sent for s in self.sources)
        return {
            "mean_threshold": (sum(thresholds) / len(thresholds)
                               if thresholds else 0.0),
            "refreshes_sent": sent,
            "refreshes_in_flight": (sent - self.refreshes()),
            "cache_queue_peak": (self.topology.cache_link.total_queued_peak
                                 if self.topology else 0),
        }
