"""Command-line interface for running the paper's experiments.

Usage (installed package)::

    python -m repro e1                    # Sec 4.3 uniform validation
    python -m repro e2                    # Sec 4.3 skewed validation
    python -m repro e3 --alphas 1.1 1.2   # Sec 6.1 parameter study
    python -m repro fig4 --measure 600
    python -m repro fig5 --fluctuating
    python -m repro fig6 --sources 10 --fractions 0.1 0.5 0.9
    python -m repro multicache --num-caches 1 2 4 --topology sharded
    python -m repro faults --scenarios lossy-10 crash-restart
    python -m repro multicast --replications 1 2 4
    python -m repro readmodel --replication 3 --read-rate 0.5
    python -m repro quickstart            # the README comparison
    python -m repro profile scale --sources 100000   # cProfile any command

Every subcommand prints the same rows/series the corresponding figure in
the paper plots; ``--output FILE`` additionally archives the text.

``profile`` wraps any other subcommand in cProfile and appends a top-N
cumulative-time report -- the measurement loop behind every hot-path
optimization in this repo (see DESIGN.md Sec 8 for how to read it).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.experiments.fig4 import Fig4Config, run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.multicache import render_multicache, run_multicache
from repro.experiments.netcond import (
    SCENARIOS,
    TOPOLOGIES,
    render_netcond,
    run_netcond,
)
from repro.experiments.faults import render_faults, run_faults
from repro.experiments.multicast import (
    REPLICATIONS,
    render_multicast,
    run_multicast,
)
from repro.experiments.params import best_cell, run_parameter_grid
from repro.experiments.rebalance import (
    CACHE_COUNTS,
    render_rebalance,
    run_rebalance,
)
from repro.experiments.readmodel import render_readmodel, run_readmodel
from repro.experiments.scale import render_scale, run_scale
from repro.experiments.tables import (
    render_fig4,
    render_fig5,
    render_fig6,
    render_parameter_grid,
    render_validation,
)
from repro.experiments.validation import (
    run_skewed_validation,
    run_uniform_validation,
)
from repro.faults.plan import FAULT_SCENARIOS
from repro.network.delivery import DELIVERY_MODES


def _add_timing(parser: argparse.ArgumentParser, warmup: float,
                measure: float) -> None:
    parser.add_argument("--warmup", type=float, default=warmup,
                        help="warm-up seconds discarded from measurement")
    parser.add_argument("--measure", type=float, default=measure,
                        help="measured window length in seconds")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload random seed")


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep (1 = the "
                             "serial in-process path; results are "
                             "bit-identical at any worker count)")


def _cmd_e1(args: argparse.Namespace) -> str:
    rows = run_uniform_validation(num_objects=args.objects, seed=args.seed,
                                  warmup=args.warmup, measure=args.measure)
    return render_validation(
        rows, "E1 (Sec 4.3, uniform): paper claims < 10% difference")


def _cmd_e2(args: argparse.Namespace) -> str:
    rows = run_skewed_validation(seed=args.seed, warmup=args.warmup,
                                 measure=args.measure)
    return render_validation(
        rows, "E2 (Sec 4.3, skewed): paper claims +64%/+74%/+84%")


def _cmd_e3(args: argparse.Namespace) -> str:
    cells = run_parameter_grid(alphas=tuple(args.alphas),
                               omegas=tuple(args.omegas),
                               num_sources=args.sources,
                               objects_per_source=args.objects,
                               warmup=args.warmup, measure=args.measure,
                               seed=args.seed)
    best = best_cell(cells)
    return (render_parameter_grid(cells)
            + f"\nbest setting: alpha={best.alpha}, omega={best.omega} "
              f"(paper: alpha=1.1, omega=10)")


def _cmd_fig4(args: argparse.Namespace) -> str:
    config = Fig4Config(sources=tuple(args.sources),
                        objects_per_source=tuple(args.objects),
                        cache_bandwidths=tuple(args.cache_bandwidths),
                        warmup=args.warmup, measure=args.measure,
                        seed=args.seed)
    return render_fig4(run_fig4(config, workers=args.workers))


def _cmd_fig5(args: argparse.Namespace) -> str:
    points = run_fig5(bandwidths=tuple(args.bandwidths),
                      fluctuating=args.fluctuating, days=args.days,
                      warmup_days=args.warmup_days, seed=args.seed,
                      trace_csv=args.trace_csv)
    label = "fluctuating" if args.fluctuating else "fixed"
    return render_fig5(points, f"Figure 5 ({label} bandwidth, msgs/min)")


def _cmd_fig6(args: argparse.Namespace) -> str:
    points = run_fig6(num_sources=args.sources,
                      objects_per_source=args.objects,
                      fractions=tuple(args.fractions), seed=args.seed,
                      warmup=args.warmup, measure=args.measure)
    return render_fig6(points, f"Figure 6, m = {args.sources} sources")


def _parse_rates(text: str) -> tuple[float, ...]:
    """Parse a comma-separated rate list (``"8,4,2"``)."""
    try:
        rates = tuple(float(part) for part in text.split(",") if part)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers, got {text!r}") from exc
    if not rates:
        raise argparse.ArgumentTypeError("expected at least one rate")
    return rates


def _cmd_multicache(args: argparse.Namespace) -> str:
    points = run_multicache(num_caches_list=tuple(args.num_caches),
                            kind=args.topology,
                            replication=args.replication,
                            num_sources=args.sources,
                            objects_per_source=args.objects,
                            cache_bandwidth=args.cache_bandwidth,
                            source_bandwidth=args.source_bandwidth,
                            hot_fraction=args.hot_fraction,
                            hot_boost=args.hot_boost,
                            warmup=args.warmup, measure=args.measure,
                            seed=args.seed,
                            cache_rates=args.cache_rates,
                            delivery=args.delivery,
                            workers=args.workers)
    label = (f"heterogeneous cache rates {args.cache_rates}"
             if args.cache_rates else args.topology)
    return render_multicache(
        points, f"Multi-cache sweep ({label}): cooperative vs "
                "uniform allocation, hot-shard workload")


def _cmd_netcond(args: argparse.Namespace) -> str:
    points = run_netcond(scenarios=tuple(args.scenarios),
                         topologies=tuple(args.topologies),
                         num_sources=args.sources,
                         objects_per_source=args.objects,
                         cache_bandwidth=args.cache_bandwidth,
                         source_bandwidth=args.source_bandwidth,
                         warmup=args.warmup, measure=args.measure,
                         seed=args.seed, generator=args.generator,
                         workers=args.workers)
    return render_netcond(
        points, "E11 network conditions: five policies under "
                "trace-driven bandwidth (weighted divergence)")


def _cmd_faults(args: argparse.Namespace) -> str:
    points = run_faults(scenarios=tuple(args.scenarios),
                        topologies=tuple(args.topologies),
                        num_sources=args.sources,
                        objects_per_source=args.objects,
                        cache_bandwidth=args.cache_bandwidth,
                        source_bandwidth=args.source_bandwidth,
                        warmup=args.warmup, measure=args.measure,
                        seed=args.seed, generator=args.generator,
                        rate_cap=args.rate_cap,
                        retry_timeout=args.retry_timeout,
                        retry_backoff=args.retry_backoff,
                        retry_attempts=args.retry_attempts,
                        feedback_ttl=args.feedback_ttl,
                        workers=args.workers)
    return render_faults(
        points, "E12 fault injection: five policies under loss, crashes "
                "and feedback blackouts (weighted divergence)")


def _cmd_multicast(args: argparse.Namespace) -> str:
    points = run_multicast(deliveries=tuple(args.deliveries),
                           replications=tuple(args.replications),
                           num_caches=args.num_caches,
                           num_sources=args.sources,
                           objects_per_source=args.objects,
                           cache_bandwidth=args.cache_bandwidth,
                           source_bandwidth=args.source_bandwidth,
                           warmup=args.warmup, measure=args.measure,
                           seed=args.seed, generator=args.generator,
                           workers=args.workers)
    return render_multicast(
        points, "E14 multicast delivery: five policies x delivery plane "
                "x replication (weighted divergence)")


def _cmd_rebalance(args: argparse.Namespace) -> str:
    points = run_rebalance(cache_counts=tuple(args.num_caches),
                           num_sources=args.sources,
                           objects_per_source=args.objects,
                           cache_bandwidth=args.cache_bandwidth,
                           source_bandwidth=args.source_bandwidth,
                           num_phases=args.phases,
                           hot_boost=args.hot_boost,
                           rate_range=(args.rate_range[0],
                                       args.rate_range[1]),
                           interval=args.interval,
                           max_moves=args.max_moves,
                           saturation_queue=args.saturation_queue,
                           peer_rate=args.peer_rate,
                           warmup=args.warmup, measure=args.measure,
                           seed=args.seed, generator=args.generator,
                           workers=args.workers)
    return render_rebalance(
        points, "E13 shard rebalancing: static vs adaptive vs "
                "distributed under a moving hotspot "
                "(weighted divergence)")


def _cmd_readmodel(args: argparse.Namespace) -> str:
    points = run_readmodel(num_caches=args.num_caches,
                           replications=tuple(args.replication),
                           cache_bandwidths=tuple(args.cache_bandwidths),
                           read_rate=args.read_rate,
                           num_sources=args.sources,
                           objects_per_source=args.objects,
                           source_bandwidth=args.source_bandwidth,
                           warmup=args.warmup, measure=args.measure,
                           seed=args.seed, generator=args.generator,
                           replay=args.replay, delivery=args.delivery,
                           workers=args.workers)
    return render_readmodel(
        points, f"Replicated read model ({args.num_caches} caches): "
                "read-observed divergence by read policy")


def _cmd_scale(args: argparse.Namespace) -> str:
    points = run_scale(sources=tuple(args.sources),
                       update_rate=args.update_rate,
                       cache_bandwidth=args.cache_bandwidth,
                       source_bandwidth=args.source_bandwidth,
                       warmup=args.warmup, measure=args.measure,
                       seed=args.seed,
                       max_tick_sources=args.max_tick_sources,
                       generator=args.generator,
                       replays=(("event", "batched")
                                if args.replay == "both"
                                else (args.replay,)),
                       workers=args.workers,
                       shard_caches=args.shard_caches)
    return render_scale(
        points, "E9 scale sweep: event-driven wakeups vs per-tick scans "
                f"(sparse updates, lambda = {args.update_rate}/s, "
                f"{args.generator} generation)")


def _cmd_profile(args: argparse.Namespace) -> str:
    """cProfile another subcommand and append the hot-spot report."""
    import cProfile
    import io
    import pstats

    if not args.target:
        raise SystemExit("profile: expected a subcommand to profile, "
                         "e.g. `repro profile scale --sources 10000`")
    if args.target[0] == "profile":
        raise SystemExit("profile: cannot profile itself")
    inner = build_parser().parse_args(args.target)
    inner_fn: Callable[[argparse.Namespace], str] = inner.fn
    profiler = cProfile.Profile()
    profiler.enable()
    text = inner_fn(inner)
    profiler.disable()
    report = io.StringIO()
    stats = pstats.Stats(profiler, stream=report)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return (f"{text}\n\n--- cProfile: {' '.join(args.target)} "
            f"(top {args.top} by {args.sort}) ---\n"
            f"{report.getvalue().rstrip()}")


def _cmd_quickstart(args: argparse.Namespace) -> str:
    import io
    from contextlib import redirect_stdout

    sys.path.insert(0, "examples")
    buffer = io.StringIO()
    try:
        import quickstart  # noqa: F401  (examples/quickstart.py)
        with redirect_stdout(buffer):
            quickstart.main()
    except ImportError:
        return ("examples/quickstart.py not found; run from the "
                "repository root")
    finally:
        sys.path.pop(0)
    return buffer.getvalue().rstrip()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from Olston & Widom, "
                    "'Best-Effort Cache Synchronization with Source "
                    "Cooperation' (SIGMOD 2002)")
    parser.add_argument("--output", type=str, default=None,
                        help="also write the result text to this file")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("e1", help="Sec 4.3 uniform validation")
    p.add_argument("--objects", type=int, default=100)
    _add_timing(p, warmup=100.0, measure=1000.0)
    p.set_defaults(fn=_cmd_e1)

    p = sub.add_parser("e2", help="Sec 4.3 skewed validation")
    _add_timing(p, warmup=100.0, measure=1000.0)
    p.set_defaults(fn=_cmd_e2)

    p = sub.add_parser("e3", help="Sec 6.1 threshold parameter study")
    p.add_argument("--alphas", type=float, nargs="+",
                   default=[1.05, 1.1, 1.2, 1.5, 2.0])
    p.add_argument("--omegas", type=float, nargs="+",
                   default=[2.0, 5.0, 10.0, 20.0, 100.0])
    p.add_argument("--sources", type=int, default=10)
    p.add_argument("--objects", type=int, default=10)
    _add_timing(p, warmup=100.0, measure=400.0)
    p.set_defaults(fn=_cmd_e3)

    p = sub.add_parser("fig4", help="Figure 4 sweep")
    p.add_argument("--sources", type=int, nargs="+", default=[1, 10, 50])
    p.add_argument("--objects", type=int, nargs="+", default=[1, 10])
    p.add_argument("--cache-bandwidths", type=float, nargs="+",
                   default=[10.0, 40.0, 100.0])
    _add_timing(p, warmup=250.0, measure=600.0)
    _add_workers(p)
    p.set_defaults(fn=_cmd_fig4)

    p = sub.add_parser("fig5", help="Figure 5 buoy experiment")
    p.add_argument("--bandwidths", type=float, nargs="+",
                   default=[1, 2, 5, 10, 20, 40, 80])
    p.add_argument("--fluctuating", action="store_true",
                   help="fluctuate the link with the paper's mB = 0.25")
    p.add_argument("--days", type=float, default=7.0)
    p.add_argument("--warmup-days", type=float, default=1.0)
    p.add_argument("--trace-csv", type=str, default=None,
                   help="real buoy trace in time,object,value CSV form")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_fig5)

    p = sub.add_parser("fig6", help="Figure 6 CGM comparison")
    p.add_argument("--sources", type=int, default=10)
    p.add_argument("--objects", type=int, default=10)
    p.add_argument("--fractions", type=float, nargs="+",
                   default=[0.1, 0.3, 0.5, 0.7, 0.9])
    _add_timing(p, warmup=100.0, measure=500.0)
    p.set_defaults(fn=_cmd_fig6)

    p = sub.add_parser("multicache",
                       help="multi-cache topology sweep (cooperative vs "
                            "uniform allocation)")
    p.add_argument("--num-caches", type=int, nargs="+", default=[1, 2, 4],
                   help="cache-node counts to sweep")
    p.add_argument("--topology", choices=["sharded", "replicated"],
                   default="sharded",
                   help="multi-cache layout (1 cache is always the star)")
    p.add_argument("--replication", type=int, default=2,
                   help="caches per source in the replicated layout")
    p.add_argument("--sources", type=int, default=16)
    p.add_argument("--objects", type=int, default=8,
                   help="objects per source")
    p.add_argument("--cache-bandwidth", type=float, default=24.0,
                   help="aggregate cache-side msgs/s, split across caches")
    p.add_argument("--source-bandwidth", type=float, default=4.0)
    p.add_argument("--hot-fraction", type=float, default=0.25,
                   help="fraction of sources in the hot shard")
    p.add_argument("--hot-boost", type=float, default=8.0,
                   help="update-rate multiplier for hot sources")
    p.add_argument("--cache-rates", type=_parse_rates, default=None,
                   metavar="R1,R2,...",
                   help="heterogeneous per-cache link rates in msgs/s "
                        "(e.g. 8,4,2); implies a single sweep point with "
                        "that many caches and overrides --cache-bandwidth")
    p.add_argument("--delivery", choices=list(DELIVERY_MODES),
                   default="unicast",
                   help="fan-out plane for replicated sources (multicast "
                        "charges cache-side bandwidth once per logical "
                        "refresh)")
    _add_timing(p, warmup=100.0, measure=400.0)
    _add_workers(p)
    p.set_defaults(fn=_cmd_multicache)

    p = sub.add_parser("netcond",
                       help="E11 network-condition matrix: five policies "
                            "under steady/diurnal/bursty/outage traces")
    p.add_argument("--scenarios", choices=list(SCENARIOS), nargs="+",
                   default=list(SCENARIOS),
                   help="bandwidth scenarios to run")
    p.add_argument("--topologies", choices=list(TOPOLOGIES), nargs="+",
                   default=list(TOPOLOGIES),
                   help="cache layouts to run")
    p.add_argument("--sources", type=int, default=16)
    p.add_argument("--objects", type=int, default=8,
                   help="objects per source")
    p.add_argument("--cache-bandwidth", type=float, default=20.0,
                   help="mean aggregate cache-side msgs/s (the scenario "
                        "trace fluctuates around it)")
    p.add_argument("--source-bandwidth", type=float, default=4.0,
                   help="mean per-source msgs/s")
    p.add_argument("--generator", choices=["vectorized", "legacy"],
                   default="vectorized",
                   help="workload sampling implementation")
    _add_timing(p, warmup=100.0, measure=400.0)
    _add_workers(p)
    p.set_defaults(fn=_cmd_netcond)

    p = sub.add_parser("faults",
                       help="E12 fault-injection matrix: five policies "
                            "under loss/crash/blackout plans, plus "
                            "reliable-delivery and feedback-TTL arms")
    p.add_argument("--scenarios", choices=list(FAULT_SCENARIOS),
                   nargs="+", default=list(FAULT_SCENARIOS),
                   help="fault scenarios to run")
    p.add_argument("--topologies", choices=list(TOPOLOGIES), nargs="+",
                   default=list(TOPOLOGIES),
                   help="cache layouts to run")
    p.add_argument("--sources", type=int, default=16)
    p.add_argument("--objects", type=int, default=8,
                   help="objects per source")
    p.add_argument("--cache-bandwidth", type=float, default=12.0,
                   help="aggregate cache-side msgs/s")
    p.add_argument("--source-bandwidth", type=float, default=4.0,
                   help="per-source msgs/s")
    p.add_argument("--rate-cap", type=float, default=0.1,
                   help="max per-object update rate (sparse updates are "
                        "where loss hurts and retries help; see "
                        "repro.experiments.faults)")
    p.add_argument("--retry-timeout", type=float, default=3.0,
                   help="seconds before the first retransmit in the "
                        "reliable-delivery arm")
    p.add_argument("--retry-backoff", type=float, default=2.0,
                   help="multiplier on the timeout per further attempt")
    p.add_argument("--retry-attempts", type=int, default=4,
                   help="total sends per refresh, the original included")
    p.add_argument("--feedback-ttl", type=float, default=40.0,
                   help="source-side feedback staleness TTL in the "
                        "graceful-degradation arm")
    p.add_argument("--generator", choices=["vectorized", "legacy"],
                   default="vectorized",
                   help="workload sampling implementation")
    _add_timing(p, warmup=100.0, measure=400.0)
    _add_workers(p)
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser("multicast",
                       help="E14 multicast-delivery matrix: five policies "
                            "x {unicast, multicast} x replication on a "
                            "replicated layout")
    p.add_argument("--deliveries", choices=list(DELIVERY_MODES),
                   nargs="+", default=list(DELIVERY_MODES),
                   help="delivery planes to run")
    p.add_argument("--replications", type=int, nargs="+",
                   default=list(REPLICATIONS),
                   help="replication factors to sweep")
    p.add_argument("--num-caches", type=int, default=4,
                   help="cache nodes in the replicated layout")
    p.add_argument("--sources", type=int, default=16)
    p.add_argument("--objects", type=int, default=8,
                   help="objects per source")
    p.add_argument("--cache-bandwidth", type=float, default=12.0,
                   help="aggregate cache-side msgs/s (keep the links "
                        "saturated: an idle network hides the planes' "
                        "cost difference)")
    p.add_argument("--source-bandwidth", type=float, default=4.0,
                   help="per-source msgs/s")
    p.add_argument("--generator", choices=["vectorized", "legacy"],
                   default="vectorized",
                   help="workload sampling implementation")
    _add_timing(p, warmup=100.0, measure=400.0)
    _add_workers(p)
    p.set_defaults(fn=_cmd_multicast)

    p = sub.add_parser("rebalance",
                       help="E13 shard-rebalancing sweep: static vs "
                            "adaptive vs distributed allocation under "
                            "a moving hotspot")
    p.add_argument("--num-caches", type=int, nargs="+",
                   default=list(CACHE_COUNTS),
                   help="cache counts to sweep (1 runs the star "
                        "control arm)")
    p.add_argument("--sources", type=int, default=16)
    p.add_argument("--objects", type=int, default=8,
                   help="objects per source")
    p.add_argument("--cache-bandwidth", type=float, default=24.0,
                   help="aggregate cache-side msgs/s, split across "
                        "cache links")
    p.add_argument("--source-bandwidth", type=float, default=4.0,
                   help="per-source msgs/s (also the hot sources' send "
                        "ceiling)")
    p.add_argument("--phases", type=int, default=4,
                   help="hotspot phases over the horizon (the hot "
                        "block advances by its own width each phase)")
    p.add_argument("--hot-boost", type=float, default=25.0,
                   help="update-rate multiplier on the hot block")
    p.add_argument("--rate-range", type=float, nargs=2,
                   default=[0.02, 0.12],
                   help="uniform base update-rate range; keep it low "
                        "enough that cold caches bank surplus")
    p.add_argument("--interval", type=float, default=10.0,
                   help="seconds between rebalance decision windows")
    p.add_argument("--max-moves", type=int, default=2,
                   help="migrations per decision window")
    p.add_argument("--saturation-queue", type=int, default=2,
                   help="windowed FIFO peak that flags a donor")
    p.add_argument("--peer-rate", type=float, default=4.0,
                   help="cache-to-cache peer link msgs/s")
    p.add_argument("--generator", choices=["vectorized", "legacy"],
                   default="vectorized",
                   help="workload sampling implementation")
    _add_timing(p, warmup=100.0, measure=400.0)
    _add_workers(p)
    p.set_defaults(fn=_cmd_rebalance)

    p = sub.add_parser("readmodel",
                       help="replicated read model: quorum/any-replica "
                            "reads and read-observed divergence")
    p.add_argument("--num-caches", type=int, default=3,
                   help="cache nodes in the replicated layout "
                        "(1 degenerates to the star)")
    p.add_argument("--replication", type=int, nargs="+", default=[1, 2, 3],
                   help="replication factors to sweep (clamped to "
                        "--num-caches)")
    p.add_argument("--cache-bandwidths", type=float, nargs="+",
                   default=[18.0],
                   help="aggregate cache-side msgs/s values to sweep, "
                        "each split across the cache links")
    p.add_argument("--read-rate", type=float, default=0.5,
                   help="client reads/second per object (Poisson)")
    p.add_argument("--sources", type=int, default=12)
    p.add_argument("--objects", type=int, default=4,
                   help="objects per source")
    p.add_argument("--source-bandwidth", type=float, default=3.0)
    p.add_argument("--generator", choices=["vectorized", "legacy"],
                   default="vectorized",
                   help="workload + read-stream sampling implementation")
    p.add_argument("--replay", choices=["batched", "event"],
                   default="batched",
                   help="trace/read replay mode (batched = apply all "
                        "events between simulator wakeups in one call)")
    p.add_argument("--delivery", choices=list(DELIVERY_MODES),
                   default="unicast",
                   help="fan-out plane for the replicated refreshes")
    _add_timing(p, warmup=100.0, measure=400.0)
    _add_workers(p)
    p.set_defaults(fn=_cmd_readmodel)

    p = sub.add_parser("scale",
                       help="E9 scale sweep: event-driven wakeups vs "
                            "per-tick scans on sparse workloads")
    p.add_argument("--sources", type=int, nargs="+",
                   default=[100, 1000, 10000],
                   help="source counts to sweep (one object per source)")
    p.add_argument("--update-rate", type=float, default=0.002,
                   help="per-object Poisson update rate (<< 1/dt)")
    p.add_argument("--cache-bandwidth", type=float, default=8.0)
    p.add_argument("--source-bandwidth", type=float, default=1.0)
    p.add_argument("--max-tick-sources", type=int, default=2000,
                   help="skip the tick-scan baseline above this m "
                        "(it is O(ticks x m); the result is pinned "
                        "identical anyway)")
    p.add_argument("--generator", choices=["vectorized", "legacy"],
                   default="vectorized",
                   help="workload sampling implementation (legacy = the "
                        "per-object loops, for generation-cost baselines)")
    p.add_argument("--replay", choices=["batched", "event", "both"],
                   default="batched",
                   help="trace replay mode; 'both' times the per-event "
                        "loop against the batched fast path")
    p.add_argument("--shard-caches", type=int, default=None,
                   help="run each point as a sharded multi-cache "
                        "topology with this many caches, advancing the "
                        "shards in parallel worker processes (tier 2); "
                        "without it --workers parallelizes across sweep "
                        "cells (tier 1)")
    _add_timing(p, warmup=100.0, measure=500.0)
    _add_workers(p)
    p.set_defaults(fn=_cmd_scale)

    p = sub.add_parser("profile",
                       help="run another subcommand under cProfile and "
                            "print the top-N hot spots")
    p.add_argument("--top", type=int, default=25,
                   help="number of rows in the profile report")
    p.add_argument("--sort", choices=["cumulative", "tottime"],
                   default="cumulative",
                   help="profile report sort order")
    p.add_argument("target", nargs=argparse.REMAINDER,
                   help="subcommand (plus its arguments) to profile")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("quickstart", help="the README comparison")
    p.set_defaults(fn=_cmd_quickstart)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    fn: Callable[[argparse.Namespace], str] = args.fn
    text = fn(args)
    print(text)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
