"""The rebalancer: migrate source shards toward surplus bandwidth.

Decision loop (DESIGN.md Sec 14): at every window boundary the
controller reads three per-cache signals --

* the *windowed* FIFO peak of each cache link
  (:meth:`~repro.network.link.Link.queued_peak_since`, reset each
  window, so one historical burst cannot brand a cache saturated
  forever);
* the link's banked surplus credit (accrued by the NETWORK-phase refill
  that just ran, so the reading is tick-fresh without touching the
  accrual chain);
* per-source applied-refresh counts and divergence removed, from the
  :class:`~repro.cache.cache.WindowStats` the rebalancer installs on
  each cache node.

``"adaptive"`` mode ranks globally: the worst saturated cache donates
its hottest source (by windowed refresh count) to the cache with the
most surplus.  ``"distributed"`` mode is the Avrachenkov-style
low-complexity baseline: each cache sees only itself and its ring
neighbour and offloads to it when locally saturated -- no global state,
one comparison per cache per window.

A migration is a *warm* handoff: the donor's store snapshots travel in
one :class:`~repro.network.messages.MigrateMessage` over a peer link
(paying credit proportional to the shard size), routing flips
immediately, and the shared truth views are never touched -- so
divergence accounting through a migration is exact by construction.

With ``peer_seeding`` on a replicated layout, a refresh applied at one
replica is forwarded to stale siblings over the peer links for one
credit unit instead of a full source round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cache import CacheNode, WindowStats
from repro.network.bandwidth import ConstantBandwidth
from repro.network.messages import MigrateMessage
from repro.network.topology import MultiCacheTopology, Topology
from repro.sim.events import Phase

MODES = ("adaptive", "distributed")


@dataclass(frozen=True)
class RebalanceConfig:
    """Knobs of one rebalancer run.

    ``max_moves = 0`` arms the full machinery (peer links, window
    telemetry, the decision ticker) but never migrates -- the inert
    configuration the bitwise off-pin compares against, mirroring the
    fault injector's empty-plan discipline.
    """

    interval: float = 20.0  #: seconds between decision windows
    mode: str = "adaptive"  #: "adaptive" (global) or "distributed" (ring)
    saturation_queue: int = 4  #: windowed FIFO peak that flags a donor
    min_surplus: float = 1.0  #: credit a recipient must have banked
    max_moves: int = 1  #: migrations per decision window (0 = inert)
    peer_rate: float = 4.0  #: msgs/s capacity of each peer link
    peer_seeding: bool = False  #: forward fresh values to stale replicas

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown rebalance mode {self.mode!r}")
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if self.saturation_queue < 1:
            raise ValueError(
                f"saturation_queue must be >= 1, got {self.saturation_queue}")
        if self.max_moves < 0:
            raise ValueError(f"max_moves must be >= 0, got {self.max_moves}")
        if self.peer_rate <= 0:
            raise ValueError(f"peer_rate must be > 0, got {self.peer_rate}")


class Rebalancer:
    """Runs the decision loop over one policy's caches and topology.

    Inert (no links, no ticker, no windows) on a star or single-cache
    topology: there is nowhere to move load.  Migration additionally
    requires a fully sharded assignment (replicated copies are balanced
    by construction); ``peer_seeding`` conversely requires replicas.
    """

    def __init__(self, config: RebalanceConfig, topology: Topology,
                 caches: list[CacheNode]) -> None:
        self.config = config
        self.topology = topology
        self.caches = caches
        self.migrations = 0
        self.seeds_sent = 0
        self.decisions = 0
        self.active = (isinstance(topology, MultiCacheTopology)
                       and topology.num_caches >= 2)
        sharded = self.active and all(
            len(topology.caches_of(j)) == 1
            for j in range(topology.num_sources))
        self._can_migrate = (self.active and sharded
                             and config.max_moves > 0)
        self._machinery = self.active and sharded
        self._can_seed = (self.active and config.peer_seeding
                          and not sharded)
        # Row-major object blocks per source, for store handoffs.
        self._objects_of: dict[int, list[int]] = {}
        if self.active:
            for obj in caches[0].objects:
                self._objects_of.setdefault(obj.source_id,
                                            []).append(obj.index)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(self, ctx) -> None:
        """Install peer links, window telemetry and the decision ticker."""
        if not self.active:
            return
        topology = self.topology
        n = topology.num_caches
        profile = ConstantBandwidth(self.config.peer_rate)
        if self.config.mode == "distributed" and not self._can_seed:
            # Ring only: each cache talks to its right neighbour.
            pairs = [(k, (k + 1) % n) for k in range(n)]
        else:
            pairs = [(a, b) for a in range(n) for b in range(n) if a != b]
        for a, b in pairs:
            topology.add_peer_link(a, b, profile, now=ctx.sim.now)
        if self._machinery:
            for cache in self.caches:
                cache.window = WindowStats()
            ctx.sim.every(self.config.interval, self.on_window,
                          phase=Phase.METRICS)
        if self._can_seed:
            for k, cache in enumerate(self.caches):
                cache.add_refresh_hook(self._make_seed_hook(k))

    # ------------------------------------------------------------------
    # Replica seeding
    # ------------------------------------------------------------------
    def _make_seed_hook(self, cache_id: int):
        topology = self.topology
        caches = self.caches

        def hook(obj, now: float) -> None:
            replicas = topology.caches_of(obj.source_id)
            if len(replicas) == 1:
                return
            store = caches[cache_id].store
            if store is None:
                return
            index = obj.index
            value = float(store.values[index])
            count = int(store.applied_counts[index])
            for sibling in replicas:
                if sibling == cache_id:
                    continue
                sibling_store = caches[sibling].store
                if (sibling_store is not None
                        and sibling_store.applied_counts[index] >= count):
                    continue  # sibling already as fresh
                if topology.peer_link(cache_id, sibling) is None:
                    continue
                self.seeds_sent += 1
                topology.send_peer(MigrateMessage(
                    source_id=obj.source_id, sent_at=now,
                    cache_id=sibling, from_cache=cache_id,
                    items=[(index, value, count)]))
        return hook

    # ------------------------------------------------------------------
    # Decision loop
    # ------------------------------------------------------------------
    def on_window(self, now: float) -> None:
        """One decision window: read telemetry, move shards, reset."""
        self.decisions += 1
        topology = self.topology
        links = topology.cache_links
        n = topology.num_caches
        # surplus() without a clock: the NETWORK-phase refill of this
        # same timestamp already accrued each link to ``now``, and an
        # extra mid-window accrue here would split the credit float
        # chain and break the inert-config bitwise pin.
        peaks = [links[k].queued_peak_since() for k in range(n)]
        surpluses = [links[k].surplus() for k in range(n)]
        for source_id, donor, recipient in self._plan(peaks, surpluses):
            self._migrate(source_id, donor, recipient, now)
        for k in range(n):
            links[k].reset_queued_peak()
            window = self.caches[k].window
            if window is not None:
                window.reset()

    def _plan(self, peaks: list[int], surpluses: list[float]
              ) -> list[tuple[int, int, int]]:
        if not self._can_migrate:
            return []
        if self.config.mode == "adaptive":
            return self._plan_adaptive(peaks, surpluses)
        return self._plan_distributed(peaks, surpluses)

    def _plan_adaptive(self, peaks: list[int], surpluses: list[float]
                       ) -> list[tuple[int, int, int]]:
        """Global rule: worst backlog donates its hottest source to the
        most surplus-rich uncongested cache."""
        config = self.config
        moves: list[tuple[int, int, int]] = []
        taken: set[int] = set()
        for _ in range(config.max_moves):
            donor = max(range(len(peaks)), key=lambda k: peaks[k])
            if peaks[donor] < config.saturation_queue:
                break
            recipients = [k for k in range(len(peaks))
                          if k != donor
                          and peaks[k] < config.saturation_queue
                          and surpluses[k] >= config.min_surplus]
            if not recipients:
                break
            recipient = max(recipients, key=lambda k: surpluses[k])
            source_id = self._hottest_source(donor, taken)
            if source_id is None:
                break
            taken.add(source_id)
            moves.append((source_id, donor, recipient))
            # One accepted shard per window per recipient: its surplus
            # estimate no longer holds once new load is routed there.
            surpluses[recipient] = 0.0
        return moves

    def _plan_distributed(self, peaks: list[int], surpluses: list[float]
                          ) -> list[tuple[int, int, int]]:
        """Avrachenkov-style local rule: each cache compares itself with
        its ring neighbour only, offloading when locally saturated and
        the neighbour is demonstrably better off.  O(1) state per cache,
        no global ranking."""
        config = self.config
        moves: list[tuple[int, int, int]] = []
        taken: set[int] = set()
        n = len(peaks)
        for k in range(n):
            if len(moves) >= config.max_moves:
                break
            neighbour = (k + 1) % n
            if (peaks[k] >= config.saturation_queue
                    and peaks[neighbour] < peaks[k]
                    and surpluses[neighbour] >= config.min_surplus):
                source_id = self._hottest_source(k, taken)
                if source_id is not None:
                    taken.add(source_id)
                    moves.append((source_id, k, neighbour))
        return moves

    def _hottest_source(self, donor: int,
                        taken: set[int]) -> int | None:
        """The donor's busiest source this window, by applied refreshes.

        Telemetry-driven by design: with no window evidence there is no
        basis to pick a shard, so no move happens (a saturated cache
        whose refreshes all came from one burst earlier in the window
        still shows them here -- the window spans the whole interval).
        The donor always keeps at least one source.
        """
        window = self.caches[donor].window
        owned = self.topology.owned_sources_of(donor)
        if window is None or len(owned) < 2:
            return None
        best, best_count = None, 0
        for j in owned:
            if j in taken:
                continue
            count = window.refreshes.get(j, 0)
            if count > best_count:
                best, best_count = j, count
        return best

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def _migrate(self, source_id: int, donor: int, recipient: int,
                 now: float) -> None:
        """Warm shard handoff: snapshot, re-route, ship over the peer link.

        Routing flips before the payload lands: refreshes sent after
        this instant flow to the recipient, whose store compares
        ``update_count`` per item on arrival, so a racing refresh can
        never be regressed by the (older) migrated snapshot.  Truth
        views are untouched throughout -- see
        :meth:`CacheNode.export_source`.
        """
        items, threshold = self.caches[donor].export_source(
            source_id, self._objects_of.get(source_id, []))
        self.topology.reassign_source(source_id, recipient)
        self.migrations += 1
        self.topology.send_peer(MigrateMessage(
            source_id=source_id, sent_at=now, cache_id=recipient,
            from_cache=donor, items=items, threshold=threshold))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def telemetry(self) -> dict:
        return {
            "mode": self.config.mode,
            "active": self.active,
            "decisions": self.decisions,
            "migrations": self.migrations,
            "seeds_sent": self.seeds_sent,
            "migrations_in": sum(c.migrations_in for c in self.caches),
            "seeds_in": sum(c.seeds_in for c in self.caches),
        }
