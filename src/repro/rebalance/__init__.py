"""Telemetry-driven shard rebalancing across cache nodes (E13).

The cooperative protocol steers each cache's *own* bandwidth toward the
objects that need it, but a sharded edge has a second allocation axis the
paper leaves open: which cache a source reports to.  This package closes
the loop on the topology telemetry built up through PRs 1-8 -- windowed
queue peaks, accrued surplus, divergence-removed-per-message -- with a
:class:`~repro.rebalance.controller.Rebalancer` that migrates whole
source shards from a saturated cache to one with surplus over dedicated
cache-to-cache transfer links.

See DESIGN.md Sec 14 for the decision rule, the migration-exactness
argument (truth views never move, so divergence accounting is exact),
and the peer-link credit model.
"""

from repro.rebalance.controller import RebalanceConfig, Rebalancer

__all__ = ["RebalanceConfig", "Rebalancer"]
