"""The adaptive local refresh threshold (paper Sec 5).

Each source ``S_j`` keeps a local threshold ``T_j`` and refreshes its
top-priority object only while that priority is at least ``T_j``.  The
threshold adapts:

* **increase on refresh**: every refresh sent multiplies the threshold by
  ``alpha * gamma``.  ``alpha`` (paper's best setting: 1.1) conservatively
  slows the refresh rate in the absence of feedback.  ``gamma`` accelerates
  the back-off when the network looks flooded: with ``t_fb`` the elapsed
  time since the last feedback message and ``P_fb`` the expected feedback
  period (roughly ``num_sources / mean cache bandwidth``),
  ``gamma = max(1, t_fb / P_fb)``.
* **decrease on positive feedback**: a feedback message divides the
  threshold by ``omega`` (paper's best setting: 10) -- *unless* the source
  is currently sending at full source-side capacity, in which case the
  feedback is ignored (footnote 3: a capacity-limited source lowering its
  threshold would build a backlog that could later flood the cache).

The order-of-magnitude asymmetry between ``alpha`` and ``omega`` reflects
that increases (per refresh) are far more frequent than decreases (per
feedback message).
"""

from __future__ import annotations

DEFAULT_ALPHA = 1.1
DEFAULT_OMEGA = 10.0


class ThresholdController:
    """Maintains one source's local refresh threshold ``T_j``.

    Parameters
    ----------
    initial:
        Starting threshold.  The algorithm is adaptive, so any positive
        value works after a warm-up period (paper Sec 5).
    alpha:
        Multiplicative increase applied per refresh sent.
    omega:
        Multiplicative decrease applied per accepted feedback message.
    feedback_period:
        Expected time between feedback messages (``P_feedback``); ``None``
        disables the flood-acceleration factor ``gamma`` (it stays 1).  The
        paper notes the estimate "need only be a rough estimate".
    floor, ceil:
        Numerical clamps keeping the threshold in a sane range.
    feedback_ttl:
        Staleness bound on the last feedback message.  When set, silence
        longer than the TTL stops counting as flood evidence (``gamma``
        freezes at 1) and instead decays the threshold by ``1/omega``
        once per elapsed TTL, so a source cut off from feedback -- a
        blackout, a crashed cache -- drifts back toward the uniform
        allocation instead of backing off forever.  ``None`` (default)
        keeps the paper's pure behaviour.
    """

    __slots__ = ("value", "alpha", "omega", "feedback_period", "floor",
                 "ceil", "last_feedback_time", "refreshes", "feedbacks",
                 "feedbacks_ignored", "feedback_ttl", "ttl_decays",
                 "_decay_deadline")

    def __init__(self, initial: float = 1.0, alpha: float = DEFAULT_ALPHA,
                 omega: float = DEFAULT_OMEGA,
                 feedback_period: float | None = None,
                 floor: float = 1e-12, ceil: float = 1e15,
                 start_time: float = 0.0,
                 feedback_ttl: float | None = None) -> None:
        if initial <= 0:
            raise ValueError(f"initial threshold must be > 0, got {initial}")
        if alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        if omega <= 1.0:
            raise ValueError(f"omega must be > 1, got {omega}")
        if feedback_period is not None and feedback_period <= 0:
            raise ValueError(
                f"feedback period must be > 0, got {feedback_period}")
        if feedback_ttl is not None and feedback_ttl <= 0:
            raise ValueError(
                f"feedback TTL must be > 0, got {feedback_ttl}")
        self.value = float(initial)
        self.alpha = float(alpha)
        self.omega = float(omega)
        self.feedback_period = feedback_period
        self.floor = floor
        self.ceil = ceil
        self.last_feedback_time = start_time
        self.refreshes = 0
        self.feedbacks = 0
        self.feedbacks_ignored = 0
        self.feedback_ttl = feedback_ttl
        self.ttl_decays = 0
        self._decay_deadline = (start_time + feedback_ttl
                                if feedback_ttl is not None else float("inf"))

    def gamma(self, now: float) -> float:
        """Flood-acceleration factor ``max(1, t_feedback / P_feedback)``."""
        if self.feedback_period is None:
            return 1.0
        elapsed = now - self.last_feedback_time
        if elapsed <= self.feedback_period:
            return 1.0
        ttl = self.feedback_ttl
        if ttl is not None and elapsed > ttl:
            # Feedback is *stale*, not merely overdue: silence this long
            # means the channel is down, which is no evidence of flooding.
            return 1.0
        return elapsed / self.feedback_period

    def maybe_decay(self, now: float) -> None:
        """Apply any TTL decays that have come due (lazy, idempotent).

        Called from the source's drain path; the while-loop catches up
        one ``1/omega`` step per full TTL elapsed since the deadline, so
        the result depends only on ``now`` -- not on how often the
        source happened to be polled during the blackout.
        """
        if now < self._decay_deadline:
            return
        ttl = self.feedback_ttl
        while now >= self._decay_deadline:
            self.value = max(self.floor, self.value / self.omega)
            self.ttl_decays += 1
            self._decay_deadline += ttl

    def next_decay_time(self) -> float | None:
        """When the next TTL decay is due (``None`` if TTL disabled)."""
        if self.feedback_ttl is None:
            return None
        return self._decay_deadline

    def on_refresh(self, now: float) -> None:
        """A refresh was sent: raise the threshold by ``alpha * gamma``."""
        self.refreshes += 1
        self.value = min(self.ceil, self.value * self.alpha * self.gamma(now))

    def on_feedback(self, now: float, at_capacity: bool = False) -> None:
        """Positive feedback arrived: lower the threshold by ``omega``.

        ``at_capacity`` implements footnote 3: sources already sending at
        full source-side capacity leave their threshold unmodified.
        """
        self.last_feedback_time = now
        if self.feedback_ttl is not None:
            self._decay_deadline = now + self.feedback_ttl
        if at_capacity:
            self.feedbacks_ignored += 1
            return
        self.feedbacks += 1
        self.value = max(self.floor, self.value / self.omega)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ThresholdController T={self.value:.4g} "
                f"alpha={self.alpha} omega={self.omega}>")
