"""Lazy max-heap priority tracking (paper Sec 8).

"Sources can maintain a priority queue so that the highest-priority updated
object can be located quickly whenever spare bandwidth becomes available."

Priorities (for the non-time-varying functions) change only when an object
is updated, so a *lazy* heap is exact: every priority change pushes a new
entry stamped with a per-object version number, and stale entries are
discarded on pop.  Objects whose priority is zero (freshly refreshed, or
fresh under the staleness metric) are kept out of the heap entirely.
"""

from __future__ import annotations

import heapq


class PriorityTracker:
    """Tracks ``index -> priority`` with O(log n) max extraction."""

    __slots__ = ("_heap", "_priority", "_version")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int]] = []  # (-priority, ver, idx)
        self._priority: dict[int, float] = {}
        self._version: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._priority)

    def __contains__(self, index: int) -> bool:
        return index in self._priority

    def get(self, index: int) -> float:
        """Current priority of ``index`` (0 when untracked)."""
        return self._priority.get(index, 0.0)

    def update(self, index: int, priority: float) -> None:
        """Set the priority of ``index``; zero/negative removes it."""
        version = self._version.get(index, 0) + 1
        self._version[index] = version
        if priority <= 0.0:
            self._priority.pop(index, None)
            return
        self._priority[index] = priority
        heapq.heappush(self._heap, (-priority, version, index))

    def remove(self, index: int) -> None:
        """Drop ``index`` from the queue (e.g. after refreshing it)."""
        self._version[index] = self._version.get(index, 0) + 1
        self._priority.pop(index, None)

    def peek(self) -> tuple[int, float] | None:
        """Highest-priority ``(index, priority)`` without removing it."""
        self._discard_stale()
        if not self._heap:
            return None
        neg_priority, _, index = self._heap[0]
        return index, -neg_priority

    def pop(self) -> tuple[int, float] | None:
        """Remove and return the highest-priority ``(index, priority)``."""
        self._discard_stale()
        if not self._heap:
            return None
        neg_priority, _, index = heapq.heappop(self._heap)
        self.remove(index)
        return index, -neg_priority

    def items(self) -> list[tuple[int, float]]:
        """All tracked ``(index, priority)`` pairs (unsorted)."""
        return list(self._priority.items())

    def _discard_stale(self) -> None:
        heap = self._heap
        while heap:
            neg_priority, version, index = heap[0]
            if (self._version.get(index) == version
                    and index in self._priority):
                return
            heapq.heappop(heap)
