"""Divergence metrics (paper Sec 3.1).

The divergence ``D(O, t)`` between a source object and its cached copy is
zero immediately after a refresh and grows as unpropagated updates occur.
Three metrics are defined by the paper, all implemented here behind one
strategy interface so policies are metric-agnostic:

1. **Staleness**: 0 if the cached value equals the source value, else 1.
2. **Lag**: the number of updates the cached copy is behind.
3. **Value deviation**: ``delta(V_source, V_cached)`` for any nonnegative
   ``delta``; the default is absolute difference, which the paper notes is
   "often suitable" for single numerical values such as stock prices or the
   wind-speed components of the buoy data set.

Metrics are pure functions of ``(source value, cached value, lag count)``;
the incremental bookkeeping lives in :mod:`repro.core.objects`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

DeltaFunction = Callable[[float, float], float]


def absolute_difference(v1: float, v2: float) -> float:
    """The paper's default numeric deviation: ``|V1 - V2|``."""
    return abs(v1 - v2)


class DivergenceMetric(ABC):
    """Strategy interface for computing instantaneous divergence."""

    #: short machine-readable name used in configs and reports
    name: str = "abstract"

    @abstractmethod
    def compute(self, source_value: float, cached_value: float,
                lag_count: int) -> float:
        """Divergence given the current source/cached values and lag count.

        Must be nonnegative, and zero when the copies agree
        (``lag_count == 0`` implies ``source_value == cached_value``).
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Staleness(DivergenceMetric):
    """Boolean staleness: 1 when the cached value differs from the source.

    Note the paper defines staleness as ``1 - freshness`` via *value*
    inequality, so a random walk that wanders back to the cached value makes
    the copy fresh again even without a refresh.
    """

    name = "staleness"

    def compute(self, source_value: float, cached_value: float,
                lag_count: int) -> float:
        return 1.0 if source_value != cached_value else 0.0


class Lag(DivergenceMetric):
    """Update-count lag: how many updates behind the cached copy is."""

    name = "lag"

    def compute(self, source_value: float, cached_value: float,
                lag_count: int) -> float:
        return float(lag_count)


class ValueDeviation(DivergenceMetric):
    """Application-specific value deviation ``delta(V_source, V_cached)``.

    Parameters
    ----------
    delta:
        Nonnegative difference function; defaults to absolute difference.
    """

    name = "deviation"

    def __init__(self, delta: DeltaFunction = absolute_difference) -> None:
        self.delta = delta
        # abs() is nonnegative by construction; skipping the sign check
        # (and the extra call frame) for the default delta matters in the
        # per-update hot path.
        self._default_delta = delta is absolute_difference

    def compute(self, source_value: float, cached_value: float,
                lag_count: int) -> float:
        if self._default_delta:
            return abs(source_value - cached_value)
        value = self.delta(source_value, cached_value)
        if value < 0:
            raise ValueError(
                f"delta function returned a negative divergence: {value}")
        return value


_METRICS = {
    "staleness": Staleness,
    "lag": Lag,
    "deviation": ValueDeviation,
}


def make_metric(name: str) -> DivergenceMetric:
    """Instantiate a metric by name ('staleness', 'lag', 'deviation')."""
    try:
        return _METRICS[name]()
    except KeyError:
        raise ValueError(
            f"unknown divergence metric {name!r}; "
            f"expected one of {sorted(_METRICS)}") from None
