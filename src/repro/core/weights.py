"""Weight models (paper Sec 3.2).

An object's refresh weight is ``W(O, t) = I(O, t) * P(O, t)`` --
importance times popularity.  Both factors (and hence the product) may vary
over time; the paper's experiments use "weights [that] vary over time
following sine-wave patterns with randomly-assigned amplitudes and periods".

Weight models are indexed by global object index and are vectorized:
``weights(t)`` returns the full weight vector, which the metrics collector
uses for exact piecewise integration, while schedulers query single weights
at priority-computation time (consistent with the paper's
``W(O, t) ~= W(O, t_now)`` approximation between refreshes).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class WeightModel(ABC):
    """Time-varying nonnegative weights over ``n`` objects."""

    def __init__(self, n: int) -> None:
        # n == 0 is a valid degenerate model: shard slicing can produce an
        # empty shard, whose weight vector is simply empty.
        if n < 0:
            raise ValueError(f"object count must be >= 0, got n={n}")
        self.n = n

    @abstractmethod
    def weight(self, index: int, t: float) -> float:
        """Weight of object ``index`` at time ``t``."""

    @abstractmethod
    def weights(self, t: float) -> np.ndarray:
        """Vector of all ``n`` weights at time ``t``."""

    def weights_at(self, times: np.ndarray,
                   indices: np.ndarray | None = None) -> np.ndarray:
        """Weight of each selected object at its *own* evaluation time.

        ``times[k]`` is the evaluation time of object ``indices[k]``
        (``indices = None`` selects all ``n`` objects, so ``times`` must
        then have length ``n``).  This is the vectorized form the metrics
        collector needs for exact piecewise integration, where each
        object's current piece started at a different time.  Subclasses
        override with closed forms; this fallback loops and matches
        :meth:`weight` exactly.
        """
        if indices is None:
            indices = np.arange(self.n)
        return np.array([self.weight(int(i), float(t))
                         for i, t in zip(indices, times)], dtype=float)

    def subset(self, indices: np.ndarray) -> "WeightModel":
        """Weight model restricted to ``indices``, relabeled ``0..k-1``.

        Shard-parallel execution runs each cache's source block as an
        independent sub-simulation over locally-renumbered objects; the
        sub-model must return bit-identical weights for the surviving
        objects (``subset(idx).weight(j, t) == weight(idx[j], t)``).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support shard slicing")


class StaticWeights(WeightModel):
    """Constant per-object weights (the ``I(O,t) = 1`` special case and the
    skewed half-10/half-1 assignment of Sec 4.3)."""

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        if values.ndim != 1:
            raise ValueError("weights must be a 1-D array")
        if (values < 0).any():
            raise ValueError("weights must be nonnegative")
        super().__init__(len(values))
        self.values = values
        # Python-float mirror for the scalar getter: one list index beats
        # a numpy scalar extraction in per-event hot paths (same bits --
        # tolist() converts float64 exactly).
        self._scalars = values.tolist()

    @classmethod
    def uniform(cls, n: int, value: float = 1.0) -> "StaticWeights":
        return cls(np.full(n, float(value)))

    def weight(self, index: int, t: float) -> float:
        return self._scalars[index]

    def weights(self, t: float) -> np.ndarray:
        return self.values

    def weights_at(self, times: np.ndarray,
                   indices: np.ndarray | None = None) -> np.ndarray:
        if indices is None:
            return self.values
        return self.values[indices]

    def subset(self, indices: np.ndarray) -> "StaticWeights":
        return StaticWeights(self.values[indices])


class SineWeights(WeightModel):
    """Sinusoidally fluctuating weights.

    ``w_i(t) = base_i * (1 + amp_i * sin(2 pi t / period_i + phase_i))``
    with ``0 <= amp_i < 1`` so weights stay positive.
    """

    def __init__(self, base: np.ndarray, amplitude: np.ndarray,
                 period: np.ndarray, phase: np.ndarray) -> None:
        base = np.asarray(base, dtype=float)
        amplitude = np.asarray(amplitude, dtype=float)
        period = np.asarray(period, dtype=float)
        phase = np.asarray(phase, dtype=float)
        if not (base.shape == amplitude.shape == period.shape == phase.shape):
            raise ValueError("all parameter arrays must share one shape")
        if (base < 0).any():
            raise ValueError("base weights must be nonnegative")
        if ((amplitude < 0) | (amplitude >= 1)).any():
            raise ValueError("amplitudes must be in [0, 1)")
        if (period <= 0).any():
            raise ValueError("periods must be positive")
        super().__init__(len(base))
        self.base = base
        self.amplitude = amplitude
        self.omega = 2.0 * np.pi / period
        self.phase = phase

    @classmethod
    def random(cls, n: int, rng: np.random.Generator,
               base_range: tuple[float, float] = (0.5, 2.0),
               amplitude_range: tuple[float, float] = (0.0, 0.8),
               period_range: tuple[float, float] = (50.0, 500.0)
               ) -> "SineWeights":
        """Randomly-assigned amplitudes and periods, as in the paper Sec 6."""
        return cls(
            base=rng.uniform(*base_range, size=n),
            amplitude=rng.uniform(*amplitude_range, size=n),
            period=rng.uniform(*period_range, size=n),
            phase=rng.uniform(0.0, 2.0 * np.pi, size=n),
        )

    def weight(self, index: int, t: float) -> float:
        return float(self.base[index]
                     * (1.0 + self.amplitude[index]
                        * np.sin(self.omega[index] * t + self.phase[index])))

    def weights(self, t: float) -> np.ndarray:
        return self.base * (1.0 + self.amplitude
                            * np.sin(self.omega * t + self.phase))

    def weights_at(self, times: np.ndarray,
                   indices: np.ndarray | None = None) -> np.ndarray:
        if indices is None:
            base, amp = self.base, self.amplitude
            omega, phase = self.omega, self.phase
        else:
            base, amp = self.base[indices], self.amplitude[indices]
            omega, phase = self.omega[indices], self.phase[indices]
        return base * (1.0 + amp * np.sin(omega * times + phase))

    def subset(self, indices: np.ndarray) -> "SineWeights":
        sliced = SineWeights(self.base[indices], self.amplitude[indices],
                             2.0 * np.pi / self.omega[indices],
                             self.phase[indices])
        # The constructor stores omega = 2*pi/period; round-tripping through
        # period can drop an ulp, so keep the original omega bits.
        sliced.omega = self.omega[indices]
        return sliced


class CostAdjustedWeights(WeightModel):
    """Weights divided by per-object refresh cost (paper Sec 10.1).

    "Accounting for non-uniform cost in the priority function is a simple
    matter of extending the weight to include a factor inversely
    proportional to cost."  This model applies that factor so a twice-as-
    expensive object must be twice as valuable per unit divergence to win
    a refresh slot.  (The harder question the paper leaves open -- budget
    admission when the top-priority object is larger than the remaining
    bandwidth -- is out of scope here; all messages still cost one unit on
    the wire.)
    """

    def __init__(self, base: WeightModel, costs: np.ndarray) -> None:
        costs = np.asarray(costs, dtype=float)
        if len(costs) != base.n:
            raise ValueError(
                f"expected {base.n} costs, got {len(costs)}")
        if (costs <= 0).any():
            raise ValueError("costs must be positive")
        super().__init__(base.n)
        self.base = base
        self.costs = costs

    def weight(self, index: int, t: float) -> float:
        return self.base.weight(index, t) / float(self.costs[index])

    def weights(self, t: float) -> np.ndarray:
        return self.base.weights(t) / self.costs

    def weights_at(self, times: np.ndarray,
                   indices: np.ndarray | None = None) -> np.ndarray:
        costs = self.costs if indices is None else self.costs[indices]
        return self.base.weights_at(times, indices) / costs

    def subset(self, indices: np.ndarray) -> "CostAdjustedWeights":
        return CostAdjustedWeights(self.base.subset(indices),
                                   self.costs[indices])


class ProductWeights(WeightModel):
    """``W = I * P``: importance times popularity (paper Sec 3.2)."""

    def __init__(self, importance: WeightModel,
                 popularity: WeightModel) -> None:
        if importance.n != popularity.n:
            raise ValueError(
                f"importance covers {importance.n} objects but popularity "
                f"covers {popularity.n}")
        super().__init__(importance.n)
        self.importance = importance
        self.popularity = popularity

    def weight(self, index: int, t: float) -> float:
        return (self.importance.weight(index, t)
                * self.popularity.weight(index, t))

    def weights(self, t: float) -> np.ndarray:
        return self.importance.weights(t) * self.popularity.weights(t)

    def weights_at(self, times: np.ndarray,
                   indices: np.ndarray | None = None) -> np.ndarray:
        return (self.importance.weights_at(times, indices)
                * self.popularity.weights_at(times, indices))

    def subset(self, indices: np.ndarray) -> "ProductWeights":
        return ProductWeights(self.importance.subset(indices),
                              self.popularity.subset(indices))
