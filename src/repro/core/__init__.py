"""Core best-effort synchronization library (the paper's contribution).

Divergence metrics (Sec 3.1), weight models (Sec 3.2), refresh priority
functions (Secs 3.3-3.4, 4.3, 9), lazy priority tracking (Sec 8) and the
adaptive threshold controller (Sec 5).
"""

from repro.core.divergence import (
    DivergenceMetric,
    Lag,
    Staleness,
    ValueDeviation,
    absolute_difference,
    make_metric,
)
from repro.core.objects import DataObject, SyncView
from repro.core.priority import (
    AreaPriority,
    DivergenceBoundPriority,
    PoissonLagPriority,
    PoissonStalenessPriority,
    PriorityFunction,
    SimpleDivergencePriority,
    default_priority_for,
    make_priority,
)
from repro.core.threshold import DEFAULT_ALPHA, DEFAULT_OMEGA, ThresholdController
from repro.core.tracking import PriorityTracker
from repro.core.weights import (
    CostAdjustedWeights,
    ProductWeights,
    SineWeights,
    StaticWeights,
    WeightModel,
)

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_OMEGA",
    "AreaPriority",
    "CostAdjustedWeights",
    "DataObject",
    "DivergenceBoundPriority",
    "DivergenceMetric",
    "Lag",
    "PoissonLagPriority",
    "PoissonStalenessPriority",
    "PriorityFunction",
    "PriorityTracker",
    "ProductWeights",
    "SimpleDivergencePriority",
    "SineWeights",
    "Staleness",
    "StaticWeights",
    "SyncView",
    "ThresholdController",
    "ValueDeviation",
    "WeightModel",
    "absolute_difference",
    "default_priority_for",
    "make_metric",
    "make_priority",
]
