"""Refresh priority functions (paper Secs 3.3, 3.4, 4.3 and 9).

The central result of the paper: objects should *not* simply be refreshed in
order of current weighted divergence.  The right priority is the area above
the divergence curve since the last refresh,

    P(O, t) = [ (t - t_last) * D(O, t) - integral_{t_last}^{t} D(O, u) du ] * W(O, t)

which rewards objects that diverged *recently* (cheap to keep synchronized)
over objects that diverged immediately after their last refresh (likely to
re-diverge at once, wasting the refresh).

Implemented priority functions:

* :class:`AreaPriority` -- the general formula above, exact for any metric.
* :class:`PoissonStalenessPriority` -- special case ``D_s / lambda * W``
  (Sec 3.4) for Poisson updates under the staleness metric.
* :class:`PoissonLagPriority` -- special case
  ``D_l (D_l + 1) / (2 lambda) * W`` for Poisson updates under lag.
* :class:`SimpleDivergencePriority` -- the strawman ``D * W`` the paper
  empirically dismantles in Sec 4.3.
* :class:`DivergenceBoundPriority` -- ``R (t - t_last)^2 / 2 * W`` for
  minimizing guaranteed divergence *bounds* (Sec 9).

All functions return weighted priorities; the threshold-setting algorithm
compares them directly against the local refresh threshold.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.objects import DataObject


class PriorityFunction(ABC):
    """Strategy interface mapping object state to a refresh priority."""

    #: short machine-readable name used in configs and reports
    name: str = "abstract"

    #: True when the priority can change between updates (e.g. the
    #: divergence-bound priority grows continuously with time); such
    #: functions need periodic re-evaluation rather than lazy heaps alone.
    time_varying: bool = False

    @abstractmethod
    def unweighted(self, obj: DataObject, now: float) -> float:
        """Priority before applying the weight factor."""

    def priority(self, obj: DataObject, weight: float, now: float) -> float:
        """Weighted refresh priority ``P(O, now)``."""
        return self.unweighted(obj, now) * weight

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AreaPriority(PriorityFunction):
    """The paper's general priority: area above the divergence curve.

    Constant between updates (Sec 8.2: priority only changes when an update
    changes the divergence), which makes lazy priority queues exact.
    """

    name = "area"

    def unweighted(self, obj: DataObject, now: float) -> float:
        return obj.belief.area_priority(now)


class PoissonStalenessPriority(PriorityFunction):
    """``P_s = D_s / lambda * W`` (Sec 3.4).

    Stale objects with low update rates are refreshed first: they are the
    most likely to stay fresh afterwards.  Fresh objects get priority 0.
    """

    name = "poisson-staleness"

    def unweighted(self, obj: DataObject, now: float) -> float:
        if obj.belief.divergence == 0.0:
            return 0.0
        rate = obj.rate
        if rate <= 0.0:
            # An object that "never" updates yet is stale diverged through
            # some exceptional path; treat its expected freshness horizon as
            # unbounded, i.e. maximal priority.
            return float("inf")
        return 1.0 / rate


class PoissonLagPriority(PriorityFunction):
    """``P_l = D_l (D_l + 1) / (2 lambda) * W`` (Sec 3.4).

    Quadratic in the number of unpropagated updates, inversely proportional
    to the update rate.
    """

    name = "poisson-lag"

    def unweighted(self, obj: DataObject, now: float) -> float:
        lag = obj.belief.divergence
        if lag == 0.0:
            return 0.0
        rate = obj.rate
        if rate <= 0.0:
            return float("inf")
        return lag * (lag + 1.0) / (2.0 * rate)


class SimpleDivergencePriority(PriorityFunction):
    """The intuitive-but-suboptimal strawman ``P = D * W`` (Sec 4.3)."""

    name = "simple"

    def unweighted(self, obj: DataObject, now: float) -> float:
        return obj.belief.divergence


class DivergenceBoundPriority(PriorityFunction):
    """Bound-minimizing priority ``P = R (t - t_last)^2 / 2 * W`` (Sec 9).

    Uses the object's known maximum divergence rate ``R_i`` rather than the
    actual divergence; grows continuously with time, so schedulers must
    re-evaluate it periodically (``time_varying`` is True).
    """

    name = "bound"
    time_varying = True

    def unweighted(self, obj: DataObject, now: float) -> float:
        elapsed = now - obj.belief.last_refresh_time
        return obj.max_rate * elapsed * elapsed / 2.0


_PRIORITIES = {
    cls.name: cls
    for cls in (AreaPriority, PoissonStalenessPriority, PoissonLagPriority,
                SimpleDivergencePriority, DivergenceBoundPriority)
}


def make_priority(name: str) -> PriorityFunction:
    """Instantiate a priority function by name."""
    try:
        return _PRIORITIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown priority function {name!r}; "
            f"expected one of {sorted(_PRIORITIES)}") from None


def default_priority_for(metric_name: str,
                         rates_known: bool = True) -> PriorityFunction:
    """The priority function the paper uses for a given divergence metric.

    For Poisson workloads with known (or estimated) rates the special-case
    formulas apply to staleness and lag; value deviation always uses the
    general area formula.
    """
    if rates_known and metric_name == "staleness":
        return PoissonStalenessPriority()
    if rates_known and metric_name == "lag":
        return PoissonLagPriority()
    return AreaPriority()
