"""Per-object synchronization state.

Each data object has *two* views of its synchronization status:

* the **belief** view, held by the source: divergence relative to the value
  the source last *sent*.  Priorities (Sec 3.3) are computed against this
  view, because a cooperating source knows exactly what it shipped but not
  whether the message has been delivered yet.
* the **truth** view, used for evaluation: divergence relative to the value
  the cache last *applied*.  While a refresh message sits in a congested
  queue the truth view keeps diverging -- this is precisely the queueing
  penalty the paper's flood-avoiding feedback scheme is designed to limit.

For ideal (omniscient, zero-latency) policies the two views coincide.

:class:`SyncView` also maintains the running integral of divergence since
the last refresh, updated lazily: divergence only changes at update and
refresh events (paper Sec 8.2), so the integral accrues
``divergence * elapsed`` per piece, in O(1) per event.
"""

from __future__ import annotations

from repro.core.divergence import DivergenceMetric


class SyncView:
    """One view (belief or truth) of an object's divergence history."""

    __slots__ = ("reference_value", "reference_count", "last_refresh_time",
                 "divergence", "integral_acc", "last_change_time")

    def __init__(self, value: float = 0.0, time: float = 0.0) -> None:
        self.reference_value = value  #: value this view believes is cached
        self.reference_count = 0  #: object's update counter at last refresh
        self.last_refresh_time = time
        self.divergence = 0.0
        self.integral_acc = 0.0  #: integral of divergence up to last change
        self.last_change_time = time

    # ------------------------------------------------------------------
    # Incremental bookkeeping
    # ------------------------------------------------------------------
    def accrue(self, now: float) -> None:
        """Fold ``divergence * (now - last_change)`` into the integral."""
        if now > self.last_change_time:
            self.integral_acc += self.divergence * (now - self.last_change_time)
            self.last_change_time = now

    def set_divergence(self, now: float, divergence: float) -> None:
        """Record a divergence change at time ``now``."""
        self.accrue(now)
        self.divergence = divergence

    def reset(self, now: float, value: float, count: int) -> None:
        """Start a new refresh epoch: the view saw ``value`` refreshed."""
        self.reference_value = value
        self.reference_count = count
        self.last_refresh_time = now
        self.divergence = 0.0
        self.integral_acc = 0.0
        self.last_change_time = now

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def integral_at(self, now: float) -> float:
        """Integral of divergence over ``[last_refresh, now]``."""
        return self.integral_acc + self.divergence * (now - self.last_change_time)

    def area_priority(self, now: float) -> float:
        """Unweighted general refresh priority (paper Sec 3.3, Eq. 2).

        The area *above* the divergence curve:
        ``(now - t_last) * D(now) - integral(D)``.
        """
        elapsed = now - self.last_refresh_time
        return elapsed * self.divergence - self.integral_at(now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SyncView d={self.divergence:.4g} "
                f"t_last={self.last_refresh_time:.4g}>")


class DataObject:
    """A source data object together with both synchronization views.

    Attributes
    ----------
    index:
        Global object index (``source_id * n + local_index`` in the uniform
        experiment layouts).
    source_id:
        Owning source.
    rate:
        True mean update rate ``lambda_i`` (known to the source in the
        paper's special-case priority formulas; estimated by CGM baselines).
    value:
        Current source-side value.
    update_count:
        Cumulative number of updates applied to this object.
    max_rate:
        Optional known maximum divergence rate ``R_i`` (Sec 9 bounding).
    """

    __slots__ = ("index", "source_id", "rate", "value", "update_count",
                 "last_update_time", "belief", "truth", "max_rate")

    def __init__(self, index: int, source_id: int, rate: float = 0.0,
                 value: float = 0.0, time: float = 0.0,
                 max_rate: float = 0.0) -> None:
        self.index = index
        self.source_id = source_id
        self.rate = rate
        self.value = value
        self.update_count = 0
        self.last_update_time = float("-inf")  #: time of most recent update
        self.max_rate = max_rate
        self.belief = SyncView(value, time)
        self.truth = SyncView(value, time)

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply_update(self, now: float, new_value: float,
                     metric: DivergenceMetric) -> None:
        """Apply a source-side update and refresh both views' divergence."""
        self.value = new_value
        count = self.update_count + 1
        self.update_count = count
        self.last_update_time = now
        # Unrolled over the two views: this runs once per trace event.
        view = self.belief
        view.set_divergence(now, metric.compute(
            new_value, view.reference_value,
            count - view.reference_count))
        view = self.truth
        view.set_divergence(now, metric.compute(
            new_value, view.reference_value,
            count - view.reference_count))

    def mark_sent(self, now: float) -> None:
        """The source sent a refresh: reset the belief view."""
        self.belief.reset(now, self.value, self.update_count)

    def apply_refresh(self, now: float, delivered_value: float,
                      delivered_count: int,
                      metric: DivergenceMetric) -> None:
        """The cache applied a (possibly stale) refresh: reset truth view.

        ``delivered_value``/``delivered_count`` are the snapshot carried by
        the refresh message, which may already be behind the source if more
        updates happened while the message was queued.
        """
        self.truth.reset(now, delivered_value, delivered_count)
        residual = metric.compute(self.value, delivered_value,
                                  self.update_count - delivered_count)
        if residual != 0.0:
            self.truth.set_divergence(now, residual)

    def sync_views(self, now: float) -> None:
        """Make belief match truth (used by omniscient/instant policies)."""
        self.belief.reset(now, self.value, self.update_count)
        self.truth.reset(now, self.value, self.update_count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DataObject {self.index} src={self.source_id} "
                f"v={self.value:.4g} u={self.update_count}>")
