"""The runtime half of fault injection: deterministic delivery drops.

A :class:`FaultInjector` is installed on a topology (see
:meth:`repro.network.topology.Topology.install_faults`) and consulted at
every *delivery* point -- after link credit has been consumed and the
send counters bumped, exactly where a message addressed to an unwired
receiver would silently disappear.  That placement is the fault model:
a dropped message cost real bandwidth, like a packet lost on the wire,
so loss degrades goodput rather than magically refunding capacity.

Determinism: each (direction, cache) delivery stream keeps its own
attempt counter, and every drop decision is ``hash01(seed, direction,
cache, counter) < p``.  The per-stream delivery sequences are pinned
bit-for-bit identical across tick/event scheduling and batched/per-event
replay, so the drop pattern -- and therefore the whole faulty run -- is
too.  The counter advances on *every* delivery, matched or not, so
adding a loss window later in the run cannot shift earlier draws.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.plan import FaultPlan, hash01
from repro.network.messages import Message

#: Direction codes keying the per-stream counters and hash draws.
_UPSTREAM = 0
_DOWNSTREAM = 1


class FaultInjector:
    """Applies one :class:`FaultPlan` to a topology's delivery paths."""

    __slots__ = ("plan", "clock", "dropped_upstream", "dropped_downstream",
                 "dropped_crash", "_counts", "_up_rules", "_down_rules",
                 "_stalls")

    def __init__(self, plan: FaultPlan,
                 clock: Callable[[], float]) -> None:
        self.plan = plan
        self.clock = clock
        self.dropped_upstream = 0
        self.dropped_downstream = 0
        #: in-flight messages lost when a crash cleared a cache FIFO
        self.dropped_crash = 0
        self._counts: dict[tuple[int, int], int] = {}
        self._up_rules = tuple(r for r in plan.loss
                               if r.direction in ("upstream", "both"))
        self._down_rules = tuple(r for r in plan.loss
                                 if r.direction in ("downstream", "both"))
        self._stalls = plan.stalls

    @property
    def dropped(self) -> int:
        """All deliveries suppressed by this injector."""
        return (self.dropped_upstream + self.dropped_downstream
                + self.dropped_crash)

    def _next_count(self, direction: int, cache_id: int) -> int:
        key = (direction, cache_id)
        count = self._counts.get(key, 0)
        self._counts[key] = count + 1
        return count

    def _drop(self, rules, direction: int, cache_id: int,
              source_id: int, now: float, count: int) -> bool:
        # Combine overlapping windows as independent loss processes:
        # survival is the product of per-rule keep probabilities.
        keep = 1.0
        for rule in rules:
            if rule.matches(now, cache_id, source_id):
                keep *= 1.0 - rule.probability
        if keep >= 1.0:
            return False
        return hash01(self.plan.seed, direction, cache_id, count) >= keep

    def allow_upstream(self, message: Message, cache_id: int) -> bool:
        """Fate of one source -> cache delivery (False = dropped)."""
        count = self._next_count(_UPSTREAM, cache_id)
        now = self.clock()
        source_id = message.source_id
        for stall in self._stalls:
            if stall.matches(now, source_id):
                self.dropped_upstream += 1
                return False
        if self._drop(self._up_rules, _UPSTREAM, cache_id, source_id,
                      now, count):
            self.dropped_upstream += 1
            return False
        return True

    def allow_downstream(self, cache_id: int, source_id: int) -> bool:
        """Fate of one cache -> source delivery (False = dropped)."""
        count = self._next_count(_DOWNSTREAM, cache_id)
        if self._drop(self._down_rules, _DOWNSTREAM, cache_id, source_id,
                      self.clock(), count):
            self.dropped_downstream += 1
            return False
        return True
