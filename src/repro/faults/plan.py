"""Seeded, declarative fault schedules.

A :class:`FaultPlan` describes *what goes wrong when*, independent of any
policy or topology: loss-probability windows per direction (optionally
restricted to particular caches or sources), cache crash/restart events,
and source stall windows.  The plan is frozen data; the runtime half
lives in :class:`repro.faults.injector.FaultInjector`.

Loss draws must be reproducible across scheduling modes (tick vs event),
replay modes (batched vs per-event) and process-parallel fan-out, so
they never touch shared RNG state.  Instead each delivery attempt draws
:func:`hash01` over ``(seed, direction, cache, attempt counter)`` -- the
per-link delivery sequences are themselves pinned identical across
modes, so the drop pattern is too.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Scenario names understood by :func:`fault_scenario`, in E12 matrix order.
FAULT_SCENARIOS = ("none", "lossy-1", "lossy-10", "crash-restart",
                   "feedback-blackout")

_MASK64 = (1 << 64) - 1
_TWO64 = float(1 << 64)


def _mix(z: int) -> int:
    """One splitmix64 finalization round (pure-int, stable everywhere)."""
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
    return z ^ (z >> 31)


def hash01(seed: int, *keys: int) -> float:
    """A uniform draw in ``[0, 1)`` keyed by integers, not RNG state.

    splitmix64-style mixing over ``seed`` and each key in turn.  The same
    key tuple always yields the same draw, which is exactly the property
    the injector needs: the n-th delivery on a given (direction, cache)
    stream sees the same fate no matter which scheduling or replay mode
    produced it.
    """
    z = (seed * 0x9E3779B97F4A7C15) & _MASK64
    for key in keys:
        z = _mix(z ^ ((key * 0x9E3779B97F4A7C15) & _MASK64))
    return _mix(z) / _TWO64


@dataclass(frozen=True)
class LossRule:
    """Drop each matching delivery with ``probability`` in ``[start, end)``.

    ``direction`` is ``"upstream"`` (source -> cache: refreshes, poll
    responses), ``"downstream"`` (cache -> source: feedback, poll
    requests) or ``"both"``.  ``cache_ids`` / ``source_ids`` of ``None``
    match every endpoint.  A feedback blackout is a downstream rule with
    probability 1.
    """

    start: float
    end: float
    probability: float
    direction: str = "both"
    cache_ids: tuple[int, ...] | None = None
    source_ids: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError(
                f"loss window must satisfy start < end, "
                f"got [{self.start}, {self.end})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"loss probability must be in [0, 1], "
                f"got {self.probability}")
        if self.direction not in ("upstream", "downstream", "both"):
            raise ValueError(f"unknown direction {self.direction!r}")
        for name in ("cache_ids", "source_ids"):
            ids = getattr(self, name)
            if ids is not None:
                object.__setattr__(self, name,
                                   tuple(int(i) for i in ids))

    def matches(self, now: float, cache_id: int, source_id: int) -> bool:
        """True when this rule applies to a delivery happening ``now``."""
        if not self.start <= now < self.end:
            return False
        if self.cache_ids is not None and cache_id not in self.cache_ids:
            return False
        return self.source_ids is None or source_id in self.source_ids


@dataclass(frozen=True)
class CacheCrash:
    """Cold-restart cache ``cache_id`` at ``time``.

    The crash clears that cache link's in-flight FIFO queue and resets
    the cache node's learned state (store snapshots, feedback threshold
    table); divergence accounting stays exact because the truth-view
    reset goes through the ordinary refresh path at crash time.
    """

    time: float
    cache_id: int = 0

    def __post_init__(self) -> None:
        if self.time <= 0:
            raise ValueError(f"crash time must be > 0, got {self.time}")
        if self.cache_id < 0:
            raise ValueError(
                f"cache_id must be >= 0, got {self.cache_id}")


@dataclass(frozen=True)
class SourceStall:
    """Sources in ``source_ids`` deliver nothing in ``[start, end)``.

    A stalled source's upstream messages still spend link credit (the
    process is wedged, not the network), so a stall is a deterministic
    drop of every matching upstream delivery.  ``None`` stalls all.
    """

    start: float
    end: float
    source_ids: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError(
                f"stall window must satisfy start < end, "
                f"got [{self.start}, {self.end})")
        if self.source_ids is not None:
            object.__setattr__(self, "source_ids",
                               tuple(int(i) for i in self.source_ids))

    def matches(self, now: float, source_id: int) -> bool:
        if not self.start <= now < self.end:
            return False
        return self.source_ids is None or source_id in self.source_ids


@dataclass(frozen=True)
class FaultPlan:
    """A complete seeded fault schedule for one run.

    An empty plan (no rules at all) is by construction indistinguishable
    from running without fault machinery: the simulation context skips
    installing the injector entirely, leaving every delivery path on the
    exact fault-free instruction sequence -- the bitwise pin the E12
    suite asserts.
    """

    seed: int = 0
    loss: tuple[LossRule, ...] = ()
    crashes: tuple[CacheCrash, ...] = ()
    stalls: tuple[SourceStall, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "loss", tuple(self.loss))
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stalls", tuple(self.stalls))

    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (self.loss or self.crashes or self.stalls)


def fault_scenario(name: str, warmup: float, measure: float,
                   seed: int = 0) -> FaultPlan:
    """The named E12 scenario sized to one run's timing window.

    * ``none`` -- the empty plan (fault-free control arm).
    * ``lossy-1`` / ``lossy-10`` -- 1% / 10% loss on every delivery in
      both directions for the whole run.
    * ``crash-restart`` -- cache 0 cold-restarts 40% into the measured
      window (its queue, store and threshold table are lost).
    * ``feedback-blackout`` -- every downstream delivery is dropped for
      the middle 40% of the measured window: sources hear no feedback
      (and no poll requests) but upstream refreshes still flow.
    """
    if name == "none":
        return FaultPlan(seed=seed)
    if name == "lossy-1":
        return FaultPlan(seed=seed, loss=(
            LossRule(0.0, warmup + measure, 0.01, "both"),))
    if name == "lossy-10":
        return FaultPlan(seed=seed, loss=(
            LossRule(0.0, warmup + measure, 0.10, "both"),))
    if name == "crash-restart":
        return FaultPlan(seed=seed, crashes=(
            CacheCrash(time=warmup + 0.4 * measure, cache_id=0),))
    if name == "feedback-blackout":
        return FaultPlan(seed=seed, loss=(
            LossRule(warmup + 0.3 * measure, warmup + 0.7 * measure,
                     1.0, "downstream"),))
    raise ValueError(f"unknown fault scenario {name!r}; "
                     f"known: {FAULT_SCENARIOS}")
