"""Deterministic fault injection for the network substrate.

The paper assumes a reliable transport: every message that wins
bandwidth is delivered and caches never lose state.  This package makes
partial failure a first-class, *seeded* experiment axis:

* :class:`FaultPlan` -- a declarative schedule of piecewise per-link
  loss-probability windows, cache crash/restart events and source stall
  windows (a feedback blackout is a downstream loss window with
  probability 1).
* :class:`FaultInjector` -- the runtime hooked into the
  :class:`~repro.network.topology.Topology` delivery paths.  Drops
  happen at *delivery* time, after link credit is spent, like real
  packet loss.
* :class:`RetryPolicy` / :class:`ReliableDelivery` -- an optional
  per-refresh ack/timeout/retransmit layer with exponential backoff,
  bounded attempts and per-``(source, seq)`` duplicate suppression.

Everything is deterministic: loss draws come from a counter-keyed
integer hash (:func:`hash01`), never from shared RNG state, so the
tick == event and parallel == serial bitwise pins extend to faulty runs.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_SCENARIOS,
    CacheCrash,
    FaultPlan,
    LossRule,
    SourceStall,
    fault_scenario,
    hash01,
)
from repro.faults.retry import ReliableDelivery, RetryPolicy

__all__ = [
    "FAULT_SCENARIOS",
    "CacheCrash",
    "FaultInjector",
    "FaultPlan",
    "LossRule",
    "ReliableDelivery",
    "RetryPolicy",
    "SourceStall",
    "fault_scenario",
    "hash01",
]
