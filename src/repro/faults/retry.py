"""Optional reliable delivery: ack / timeout / retransmit for refreshes.

The paper's protocol is best-effort by design; this layer is the
engineering counterpoint the E12 experiment measures against it.  When a
:class:`RetryPolicy` is set on a run, every refresh (plain or batch)
that wins source-side credit is registered as *pending* with a fresh
per-source sequence number.  Delivery to the cache acts as the ack
(acks are modeled as free control traffic -- they are tiny compared to
the unit-size data messages the links account); a pending refresh whose
timeout fires is retransmitted through the ordinary
``Topology.send_upstream`` path, so retransmits consume real source and
cache link credit and can themselves queue, be dropped, or time out
again, with exponential backoff up to ``max_attempts`` total sends.

Duplicates (a retransmit racing an original that was merely queued, not
lost) are suppressed at delivery by per-``(source, seq)`` bookkeeping
before the cache ever sees them, making delivery effectively idempotent.

Retransmits carry the object's *current* value, not the stale wire
payload: the protocol synchronizes state, not a byte stream, and a real
source would never re-send data it has since overwritten.  (Without the
object table the layer falls back to re-sending the original snapshot.)

Determinism: timeout timers are ordinary simulator events scheduled at
send time, and sends happen at identical times in tick and event mode,
so the whole retransmit schedule is pinned alongside the rest of the
run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.network.messages import (
    BatchRefreshMessage,
    Message,
    RefreshMessage,
)
from repro.sim.events import Phase


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for the reliable-delivery option.

    ``timeout`` is the wait before the first retransmit; each further
    attempt waits ``backoff`` times longer.  ``max_attempts`` bounds the
    *total* number of sends (original included), after which the refresh
    is abandoned -- best-effort again, just with more tries.
    """

    timeout: float = 4.0
    backoff: float = 2.0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")


class _Pending:
    """In-flight state for one (source, seq) refresh."""

    __slots__ = ("snapshot", "targets", "delivered", "outstanding",
                 "attempts", "done", "timer")

    def __init__(self, snapshot: Message,
                 targets: tuple[int, ...]) -> None:
        self.snapshot = snapshot
        self.targets = targets
        self.delivered: set[int] = set()
        #: copies currently in flight (sent, neither delivered nor lost)
        self.outstanding = len(targets)
        self.attempts = 1  # sends so far, the original included
        self.done = False  # acked everywhere, or attempts exhausted
        self.timer = None


class ReliableDelivery:
    """Tracks pending refreshes and drives retransmissions.

    Bound to one topology via
    :meth:`~repro.network.topology.Topology.install_faults`; the
    topology calls :meth:`on_send` after a refresh wins source credit,
    and :meth:`on_delivered` / :meth:`on_lost` from its delivery guard.
    """

    def __init__(self, policy: RetryPolicy, sim, objects=None) -> None:
        self.policy = policy
        self.sim = sim
        #: global object table for fresh-value retransmits (may be None)
        self.objects = objects
        self.topology = None
        self.retransmitted = 0
        self.duplicate_suppressed = 0
        self.abandoned = 0
        self._pending: dict[tuple[int, int], _Pending] = {}
        self._next_seq: dict[int, int] = {}
        self._senders: dict[int, object] = {}

    def bind(self, topology) -> None:
        self.topology = topology

    def register_sender(self, source_id: int, source) -> None:
        """Let retransmits run the sender's full send bookkeeping.

        A policy that owns :class:`~repro.source.source.SourceNode`\\ s
        registers them here so a fresh-value retransmit also drops the
        object from the sender's priority queue (``on_refresh_sent``) --
        otherwise the stale queue entry would trigger a near-immediate
        duplicate refresh through the normal path, double-spending the
        source's credit on one object.
        """
        self._senders[source_id] = source

    @property
    def pending(self) -> int:
        """Refreshes currently awaiting ack or retransmit (telemetry)."""
        return sum(1 for entry in self._pending.values()
                   if not entry.done)

    # ------------------------------------------------------------------
    # Topology hooks
    # ------------------------------------------------------------------
    def on_send(self, message: Message) -> None:
        """A message consumed source credit and is entering cache links.

        Only refresh-family messages carry a ``seq`` slot; everything
        else (poll responses) stays best-effort.  ``seq == -1`` marks a
        fresh send: register it and arm the first timeout.  A non-
        negative seq is one of our own retransmits re-entering the
        network: just account the extra copies in flight.
        """
        seq = getattr(message, "seq", None)
        if seq is None:
            return
        targets = self.topology.caches_of(message.source_id)
        if seq >= 0:
            entry = self._pending.get((message.source_id, seq))
            if entry is not None:
                entry.outstanding += len(targets)
            return
        source_id = message.source_id
        seq = self._next_seq.get(source_id, 0)
        self._next_seq[source_id] = seq + 1
        message.seq = seq
        entry = _Pending(message, targets)
        key = (source_id, seq)
        self._pending[key] = entry
        entry.timer = self.sim.at(
            message.sent_at + self.policy.timeout,
            lambda: self._on_timeout(key), phase=Phase.SOURCES)

    def on_delivered(self, message: Message, cache_id: int) -> bool:
        """A copy reached cache ``cache_id``; False suppresses it."""
        seq = getattr(message, "seq", None)
        if seq is None or seq < 0:
            return True
        key = (message.source_id, seq)
        entry = self._pending.get(key)
        if entry is None:
            return True
        entry.outstanding -= 1
        if cache_id in entry.delivered:
            self.duplicate_suppressed += 1
            self._maybe_forget(key, entry)
            return False
        entry.delivered.add(cache_id)
        if not entry.done and len(entry.delivered) == len(entry.targets):
            entry.done = True  # acked on every target link
            if entry.timer is not None:
                entry.timer.cancel()
                entry.timer = None
        self._maybe_forget(key, entry)
        return True

    def on_lost(self, message: Message, cache_id: int) -> None:
        """A copy died in flight (injector drop or crash-cleared FIFO)."""
        seq = getattr(message, "seq", None)
        if seq is None or seq < 0:
            return
        key = (message.source_id, seq)
        entry = self._pending.get(key)
        if entry is not None:
            entry.outstanding -= 1
            self._maybe_forget(key, entry)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _maybe_forget(self, key, entry: _Pending) -> None:
        # Dedup state must outlive the ack: a duplicate copy can still be
        # queued behind the one that completed the delivery set.  Forget
        # the entry only once every sent copy is accounted for.
        if entry.done and entry.outstanding <= 0:
            del self._pending[key]

    def _rebuild(self, snapshot: Message,
                 now: float) -> tuple[Message, list]:
        """The retransmit payload: the object's current state.

        Re-reads the object table so the wire carries what the source
        holds *now*.  Returns the rebuilt message plus the objects whose
        belief must be reset via ``mark_sent`` *if* the send wins credit
        -- exactly the bookkeeping the original send did.
        """
        objects = self.objects
        if objects is None:
            return replace(snapshot, sent_at=now), []
        if isinstance(snapshot, RefreshMessage):
            obj = objects[snapshot.object_index]
            return replace(snapshot, sent_at=now, value=obj.value,
                           update_count=obj.update_count), [obj]
        if isinstance(snapshot, BatchRefreshMessage):
            marks = [objects[object_index]
                     for object_index, _value, _count in snapshot.items]
            items = [(obj.index, obj.value, obj.update_count)
                     for obj in marks]
            return replace(snapshot, sent_at=now, items=items), marks
        return replace(snapshot, sent_at=now), []

    def _on_timeout(self, key) -> None:
        entry = self._pending.get(key)
        if entry is None or entry.done:
            return
        entry.timer = None
        if entry.attempts >= self.policy.max_attempts:
            entry.done = True
            self.abandoned += 1
            self._maybe_forget(key, entry)
            return
        now = self.sim.now
        # Re-enter the ordinary upstream path: the retransmit pays source
        # credit like any refresh (a credit-starved attempt is simply
        # forfeited -- the attempt budget is about pacing, not fairness).
        message, marks = self._rebuild(entry.snapshot, now)
        entry.attempts += 1
        if self.topology.send_upstream(message):
            self.retransmitted += 1
            sender = self._senders.get(message.source_id)
            for obj in marks:
                obj.mark_sent(now)
                if sender is not None:
                    sender.monitor.on_refresh_sent(obj, now)
        delay = self.policy.timeout * (
            self.policy.backoff ** (entry.attempts - 1))
        entry.timer = self.sim.at(now + delay,
                                  lambda: self._on_timeout(key),
                                  phase=Phase.SOURCES)
