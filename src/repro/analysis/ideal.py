"""Closed-form ideal schedules for deterministic divergence models.

Section 4 of the paper derives the optimality condition: refresh periods
``T_i`` minimize total time-averaged divergence subject to
``sum 1/T_i = B`` exactly when the *area above the divergence curve*

    rho_i = T_i D_i(T_i) - integral_0^{T_i} D_i(t) dt

is a single constant ``Theta`` (the refresh threshold) across objects.  For
divergence that grows deterministically, the system solves in closed form;
these solutions are used to cross-check the simulated ideal scheduler, to
reason about the Sec 9 bounding policy (whose bound ``R (t + L)`` grows
linearly), and to compute the "theoretically achievable divergence".

Implemented models:

* **linear**: ``D_i(t) = r_i t`` (e.g. the Sec 9 divergence bounds, or
  value deviation of a drifting quantity).  ``rho_i = w_i r_i T^2 / 2``.
* **sqrt**: ``D_i(t) = c_i sqrt(t)`` (expected |deviation| of a random
  walk: ``c_i = sqrt(2 lambda_i / pi)`` for +-1 steps).
  ``rho_i = w_i c_i T^{3/2} / 3``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class IdealSchedule:
    """A closed-form optimal periodic refresh schedule."""

    periods: np.ndarray  #: optimal refresh period per object
    threshold: float  #: the common weighted priority Theta at refresh time
    average_divergence: float  #: total time-averaged weighted divergence

    @property
    def frequencies(self) -> np.ndarray:
        with np.errstate(divide="ignore"):
            return np.where(self.periods > 0, 1.0 / self.periods, 0.0)


def _validate(rates: np.ndarray, weights: np.ndarray | None,
              budget: float) -> tuple[np.ndarray, np.ndarray]:
    rates = np.asarray(rates, dtype=float)
    if (rates <= 0).any():
        raise ValueError("divergence rates must be positive")
    if budget <= 0:
        raise ValueError(f"budget must be > 0, got {budget}")
    if weights is None:
        weights = np.ones_like(rates)
    else:
        weights = np.asarray(weights, dtype=float)
        if (weights <= 0).any():
            raise ValueError("weights must be positive")
    return rates, weights


def linear_divergence_schedule(rates: np.ndarray, budget: float,
                               weights: np.ndarray | None = None
                               ) -> IdealSchedule:
    """Optimal periods for ``D_i(t) = r_i t``.

    Lagrange condition: ``w_i r_i T_i^2 / 2 = Theta`` for all ``i``, hence
    ``1/T_i proportional to sqrt(w_i r_i)`` and everything is closed form::

        T_i = (sum_j sqrt(w_j r_j)) / (B sqrt(w_i r_i))
        average divergence = (sum_j sqrt(w_j r_j))^2 / (2 B)
    """
    rates, weights = _validate(rates, weights, budget)
    root = np.sqrt(weights * rates)
    total_root = float(root.sum())
    periods = total_root / (budget * root)
    threshold = float(weights[0] * rates[0] * periods[0] ** 2 / 2.0)
    average = total_root ** 2 / (2.0 * budget)
    return IdealSchedule(periods=periods, threshold=threshold,
                         average_divergence=average)


def sqrt_divergence_schedule(rates: np.ndarray, budget: float,
                             weights: np.ndarray | None = None
                             ) -> IdealSchedule:
    """Optimal periods for ``D_i(t) = c_i sqrt(t)`` (random-walk shape).

    ``rho_i(T) = w_i c_i T^{3/2} - (2/3) w_i c_i T^{3/2}
               = w_i c_i T^{3/2} / 3 = Theta``
    so ``1/T_i proportional to (w_i c_i)^{2/3}``::

        T_i = (sum_j (w_j c_j)^{2/3}) / (B (w_i c_i)^{2/3})
        average divergence = sum_i w_i (2/3) c_i sqrt(T_i)
    """
    rates, weights = _validate(rates, weights, budget)
    power = (weights * rates) ** (2.0 / 3.0)
    total_power = float(power.sum())
    periods = total_power / (budget * power)
    threshold = float(weights[0] * rates[0] * periods[0] ** 1.5 / 3.0)
    average = float(np.sum(weights * (2.0 / 3.0) * rates
                           * np.sqrt(periods)))
    return IdealSchedule(periods=periods, threshold=threshold,
                         average_divergence=average)


def random_walk_deviation_rates(update_rates: np.ndarray,
                                step: float = 1.0) -> np.ndarray:
    """Map +-step random-walk update rates to sqrt-model coefficients.

    ``E|S_k| ~ step * sqrt(2 k / pi)`` after ``k`` steps, so with
    ``k = lambda t`` the deviation grows like ``c sqrt(t)`` with
    ``c = step * sqrt(2 lambda / pi)``.
    """
    update_rates = np.asarray(update_rates, dtype=float)
    return step * np.sqrt(2.0 * update_rates / np.pi)


def bound_schedule(max_rates: np.ndarray, budget: float,
                   weights: np.ndarray | None = None,
                   latencies: np.ndarray | None = None) -> IdealSchedule:
    """Optimal periods for minimizing average divergence *bounds* (Sec 9).

    The bound ``B_i(t) = R_i ((t - t_last) + L_i)`` has constant offset
    ``R_i L_i`` that no schedule can remove; the schedulable part grows
    linearly at rate ``R_i``, so the linear solution applies, and the
    reported average adds the latency floor back in.
    """
    schedule = linear_divergence_schedule(max_rates, budget, weights)
    if latencies is not None:
        max_rates = np.asarray(max_rates, dtype=float)
        latencies = np.asarray(latencies, dtype=float)
        w = (np.ones_like(max_rates) if weights is None
             else np.asarray(weights, dtype=float))
        schedule.average_divergence += float(
            np.sum(w * max_rates * latencies))
    return schedule
