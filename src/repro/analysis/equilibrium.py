"""Equilibrium analysis of the threshold-setting protocol (Sec 5).

The local threshold performs a multiplicative random walk:

    ln T  +=  ln(alpha)        per refresh sent
    ln T  -=  ln(omega)        per accepted feedback message

For the threshold to hover (zero drift), feedback must arrive at the rate

    feedback_rate = refresh_rate * ln(alpha) / ln(omega)

With the paper's best settings (alpha = 1.1, omega = 10) that ratio is
about 1 : 24 -- one feedback message per ~24 refreshes -- which is why the
protocol's communication overhead is a few percent: the cache-side budget
splits as ``C = refresh_rate + feedback_rate`` giving

    overhead fraction = r / (1 + r),   r = ln(alpha) / ln(omega)

independent of the number of sources.  These closed forms back the Sec 6
claim of "low communication overhead even in environments with a large
number of sources", and the expected feedback *period* per source
(``m (1 + r) / (C r)``) is what the gamma flood-detector should compare
elapsed time against.
"""

from __future__ import annotations

import math

from repro.core.threshold import DEFAULT_ALPHA, DEFAULT_OMEGA


def refreshes_per_feedback(alpha: float = DEFAULT_ALPHA,
                           omega: float = DEFAULT_OMEGA) -> float:
    """Refreshes whose threshold increase one feedback message cancels."""
    if alpha <= 1.0:
        raise ValueError(f"alpha must be > 1, got {alpha}")
    if omega <= 1.0:
        raise ValueError(f"omega must be > 1, got {omega}")
    return math.log(omega) / math.log(alpha)


def equilibrium_overhead_fraction(alpha: float = DEFAULT_ALPHA,
                                  omega: float = DEFAULT_OMEGA) -> float:
    """Fraction of cache bandwidth spent on feedback at equilibrium."""
    r = 1.0 / refreshes_per_feedback(alpha, omega)
    return r / (1.0 + r)


def equilibrium_feedback_period(num_sources: int, cache_bandwidth: float,
                                alpha: float = DEFAULT_ALPHA,
                                omega: float = DEFAULT_OMEGA) -> float:
    """Expected seconds between feedback messages to one source.

    At equilibrium the total feedback rate is
    ``C * overhead_fraction`` spread over ``num_sources`` sources.
    """
    if num_sources <= 0:
        raise ValueError(f"need at least one source, got {num_sources}")
    if cache_bandwidth <= 0:
        raise ValueError(
            f"cache bandwidth must be > 0, got {cache_bandwidth}")
    total_feedback_rate = (cache_bandwidth
                           * equilibrium_overhead_fraction(alpha, omega))
    return num_sources / total_feedback_rate


def threshold_drift_per_second(refresh_rate: float, feedback_rate: float,
                               alpha: float = DEFAULT_ALPHA,
                               omega: float = DEFAULT_OMEGA) -> float:
    """Expected d/dt of ``ln T`` given observed per-source rates.

    Positive drift means the source is throttling itself (threshold
    rising); negative drift means feedback is pushing it to refresh more.
    Zero is the equilibrium condition.
    """
    return (refresh_rate * math.log(alpha)
            - feedback_rate * math.log(omega))
