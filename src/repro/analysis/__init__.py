"""Closed-form analysis: ideal schedules and protocol equilibria."""

from repro.analysis.equilibrium import (
    equilibrium_feedback_period,
    equilibrium_overhead_fraction,
    refreshes_per_feedback,
    threshold_drift_per_second,
)
from repro.analysis.ideal import (
    IdealSchedule,
    bound_schedule,
    linear_divergence_schedule,
    random_walk_deviation_rates,
    sqrt_divergence_schedule,
)

__all__ = [
    "IdealSchedule",
    "bound_schedule",
    "equilibrium_feedback_period",
    "equilibrium_overhead_fraction",
    "linear_divergence_schedule",
    "random_walk_deviation_rates",
    "refreshes_per_feedback",
    "sqrt_divergence_schedule",
    "threshold_drift_per_second",
]
