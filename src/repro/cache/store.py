"""The cache's store of (possibly stale) object copies.

A thin value store: the heavy divergence bookkeeping lives on the
:class:`repro.core.objects.DataObject` truth views so that the evaluation
machinery sees a single consistent record.  The store exists so that user
code (examples, applications) has a natural read API with staleness
introspection, like a real cache would expose -- and, since the replicated
read model landed, so that each replica's *own* snapshot history is
queryable independently of the shared truth view (which always tracks the
freshest replica).

Freshness rule: a snapshot is fresher than another when its
``(refresh_time, applied_count)`` pair is lexicographically larger.  Two
replicas can apply the *same* snapshot count at different times (a slower
link delivering later), and -- within one tick -- different counts at the
same timestamp (cache links drain in cache-id order inside the NETWORK
phase), so neither component alone orders snapshots; the pair does.
"""

from __future__ import annotations

import numpy as np


class CacheStore:
    """Values as last applied at the cache, with refresh timestamps."""

    def __init__(self, num_objects: int,
                 initial_values: np.ndarray | None = None) -> None:
        if initial_values is None:
            initial_values = np.zeros(num_objects)
        if len(initial_values) != num_objects:
            raise ValueError(
                f"expected {num_objects} initial values, "
                f"got {len(initial_values)}")
        #: the count-0 snapshot every copy starts from; kept so a crash
        #: can cold-restart the store (see :meth:`reset`)
        self.initial_values = np.array(initial_values, dtype=float)
        self.values = self.initial_values.copy()
        self.refresh_times = np.zeros(num_objects)
        self.refresh_counts = np.zeros(num_objects, dtype=np.int64)
        #: update counter carried by the last applied snapshot (0 until the
        #: first refresh: the initial value is the count-0 snapshot)
        self.applied_counts = np.zeros(num_objects, dtype=np.int64)

    def reset(self) -> None:
        """Cold restart: forget every applied snapshot (crash recovery).

        The store reverts to its construction state -- initial values,
        zero refresh history -- exactly as if the cache process came
        back up empty and re-primed from its seed data.
        """
        self.values = self.initial_values.copy()
        self.refresh_times.fill(0.0)
        self.refresh_counts.fill(0)
        self.applied_counts.fill(0)

    def __len__(self) -> int:
        return len(self.values)

    def _check_index(self, index: int) -> None:
        # Negative indices would silently wrap (numpy semantics), which for
        # a cache keyed by object id is always a caller bug.
        if not 0 <= index < len(self.values):
            raise IndexError(
                f"object index {index} out of range "
                f"[0, {len(self.values)})")

    def apply(self, index: int, value: float, now: float,
              update_count: int = 0) -> None:
        """Record a delivered refresh.

        ``update_count`` is the source update counter carried by the
        snapshot; the read model's freshest-replica selection uses it to
        break refresh-time ties across replicas.
        """
        self._check_index(index)
        self.values[index] = value
        self.refresh_times[index] = now
        self.refresh_counts[index] += 1
        self.applied_counts[index] = update_count

    def read(self, index: int) -> float:
        """Read the cached value (possibly stale -- that is the point)."""
        self._check_index(index)
        return float(self.values[index])

    def age(self, index: int, now: float) -> float:
        """Time since the cached copy was last refreshed."""
        self._check_index(index)
        return now - float(self.refresh_times[index])

    def freshness_key(self, index: int) -> tuple[float, int]:
        """Snapshot recency as a sortable ``(refresh_time, applied_count)``
        pair -- larger is fresher (see the module docstring)."""
        self._check_index(index)
        return (float(self.refresh_times[index]),
                int(self.applied_counts[index]))

    def total_refreshes(self) -> int:
        return int(self.refresh_counts.sum())
