"""The cache's store of (possibly stale) object copies.

A thin value store: the heavy divergence bookkeeping lives on the
:class:`repro.core.objects.DataObject` truth views so that the evaluation
machinery sees a single consistent record.  The store exists so that user
code (examples, applications) has a natural read API with staleness
introspection, like a real cache would expose.
"""

from __future__ import annotations

import numpy as np


class CacheStore:
    """Values as last applied at the cache, with refresh timestamps."""

    def __init__(self, num_objects: int,
                 initial_values: np.ndarray | None = None) -> None:
        if initial_values is None:
            initial_values = np.zeros(num_objects)
        if len(initial_values) != num_objects:
            raise ValueError(
                f"expected {num_objects} initial values, "
                f"got {len(initial_values)}")
        self.values = np.array(initial_values, dtype=float)
        self.refresh_times = np.zeros(num_objects)
        self.refresh_counts = np.zeros(num_objects, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.values)

    def apply(self, index: int, value: float, now: float) -> None:
        """Record a delivered refresh."""
        self.values[index] = value
        self.refresh_times[index] = now
        self.refresh_counts[index] += 1

    def read(self, index: int) -> float:
        """Read the cached value (possibly stale -- that is the point)."""
        return float(self.values[index])

    def age(self, index: int, now: float) -> float:
        """Time since the cached copy was last refreshed."""
        return now - float(self.refresh_times[index])

    def total_refreshes(self) -> int:
        return int(self.refresh_counts.sum())
