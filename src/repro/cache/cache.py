"""The cache node: applies refreshes, records thresholds, runs feedback.

The cache is deliberately thin (the paper's point is that the *sources*
carry the scheduling intelligence): it applies whatever refreshes arrive,
tracks piggybacked thresholds, and spends surplus bandwidth on positive
feedback.  For the cache-driven baselines a poll handler can be registered
to receive :class:`PollResponse` messages.

In a multi-cache topology one :class:`CacheNode` exists per cache id; each
registers as the receiver of its own cache link and drains only that link
in its CACHE-phase tick, so congestion on one cache never blocks another.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cache.feedback import FeedbackController
from repro.cache.store import CacheStore
from repro.core.divergence import DivergenceMetric
from repro.core.objects import DataObject
from repro.metrics.collector import DivergenceCollector
from repro.network.messages import (
    BatchRefreshMessage,
    Message,
    MigrateMessage,
    PollResponse,
    RefreshMessage,
)
from repro.network.topology import Topology


class WindowStats:
    """Per-window refresh telemetry a rebalancer reads and resets.

    Attached to a :class:`CacheNode` only when a rebalancer is running
    (``None`` otherwise, so the fault-free refresh hot path pays one
    pointer check).  ``divergence_removed`` accumulates the before-minus-
    after divergence of every applied refresh -- the numerator of the
    "divergence removed per message" signal -- and ``refreshes`` counts
    applied refreshes per source, which is what picks the hottest shard
    to migrate.
    """

    __slots__ = ("divergence_removed", "refreshes", "messages")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.divergence_removed = 0.0
        self.refreshes: dict[int, int] = {}
        self.messages = 0

    def note(self, source_id: int, removed: float) -> None:
        self.divergence_removed += removed
        self.refreshes[source_id] = self.refreshes.get(source_id, 0) + 1
        self.messages += 1


class CacheNode:
    """Receives messages on its cache link and applies refreshes.

    ``objects`` is the *global* object list (indexed by global object
    index); the node only ever sees messages for sources routed to its
    ``cache_id``, so no further filtering is needed.
    """

    def __init__(self, objects: list[DataObject], metric: DivergenceMetric,
                 topology: Topology,
                 collector: DivergenceCollector | None = None,
                 store: CacheStore | None = None,
                 feedback: FeedbackController | None = None,
                 clock: Callable[[], float] = lambda: 0.0,
                 cache_id: int = 0) -> None:
        self.objects = objects
        self.metric = metric
        self.topology = topology
        self.collector = collector
        self.store = store
        self.feedback = feedback
        self.clock = clock
        self.cache_id = cache_id
        self.refreshes_applied = 0
        self.stale_discards = 0
        self.poll_responses = 0
        self.migrations_in = 0
        self.seeds_in = 0
        #: windowed telemetry, installed by a rebalancer (None = off path)
        self.window: WindowStats | None = None
        self._poll_handler: Callable[[PollResponse, float], None] | None = None
        self.refresh_hooks: list[Callable[[DataObject, float], None]] = []
        #: optional callback ``hook(now)`` fired on every delivered message,
        #: so an event-driven policy can arm this cache's per-tick wakeup
        #: (deliveries can re-create feedback work on a parked cache)
        self.activity_hook: Callable[[float], None] | None = None
        self.crashes = 0
        topology.set_cache_receiver(self.on_message, cache_id=cache_id)
        topology.add_crash_listener(cache_id, self.on_crash)

    def set_poll_handler(
            self, handler: Callable[[PollResponse, float], None]) -> None:
        self._poll_handler = handler

    def add_refresh_hook(
            self, hook: Callable[[DataObject, float], None]) -> None:
        """Register a callback invoked after each refresh is applied."""
        self.refresh_hooks.append(hook)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        now = self.clock()
        if isinstance(message, RefreshMessage):
            self._apply_refresh(message, now)
        elif isinstance(message, BatchRefreshMessage):
            self._apply_batch(message, now)
        elif isinstance(message, PollResponse):
            self.poll_responses += 1
            if self._poll_handler is not None:
                self._poll_handler(message, now)
        elif isinstance(message, MigrateMessage):
            self._apply_migration(message, now)
        if self.activity_hook is not None:
            self.activity_hook(now)

    def _apply_refresh(self, message: RefreshMessage, now: float) -> None:
        obj = self.objects[message.object_index]
        if self._is_stale(obj, message.update_count):
            return
        window = self.window
        if window is not None:
            before = obj.truth.divergence
        obj.apply_refresh(now, message.value, message.update_count,
                          self.metric)
        if window is not None:
            window.note(message.source_id, before - obj.truth.divergence)
        if self.collector is not None:
            self.collector.record(obj.index, now, obj.truth.divergence)
        if self.store is not None:
            self.store.apply(obj.index, message.value, now,
                             update_count=message.update_count)
        if self.feedback is not None:
            self.feedback.observe_threshold(message.source_id,
                                            message.threshold)
        self.refreshes_applied += 1
        for hook in self.refresh_hooks:
            hook(obj, now)

    def _apply_batch(self, message: BatchRefreshMessage,
                     now: float) -> None:
        """Apply each packaged item of a Sec 10.1 batch refresh.

        Object state transitions stay per item (each is a tiny state
        machine), but the divergence bookkeeping for the whole batch lands
        in one vectorized :meth:`DivergenceCollector.record_many` call --
        a batch holds at most one snapshot per object (the batching source
        coalesces re-updates), which is exactly the contract record_many
        requires.
        """
        applied_indices: list[int] = []
        applied_divergences: list[float] = []
        window = self.window
        for object_index, value, update_count in message.items:
            obj = self.objects[object_index]
            if self._is_stale(obj, update_count):
                continue
            if window is not None:
                before = obj.truth.divergence
            obj.apply_refresh(now, value, update_count, self.metric)
            if window is not None:
                window.note(message.source_id,
                            before - obj.truth.divergence)
            applied_indices.append(obj.index)
            applied_divergences.append(obj.truth.divergence)
            if self.store is not None:
                self.store.apply(obj.index, value, now,
                                 update_count=update_count)
            self.refreshes_applied += 1
            for hook in self.refresh_hooks:
                hook(obj, now)
        if self.collector is not None and applied_indices:
            self.collector.record_many(np.asarray(applied_indices),
                                       now,
                                       np.asarray(applied_divergences))
        if self.feedback is not None:
            self.feedback.observe_threshold(message.source_id,
                                            message.threshold)

    # ------------------------------------------------------------------
    # Shard migration (rebalancer)
    # ------------------------------------------------------------------
    def export_source(self, source_id: int,
                      object_indices: "list[int] | range"
                      ) -> tuple[list[tuple[int, float, int]], float]:
        """Donor side of a migration: snapshot state, drop the feedback row.

        Returns the ``(object_index, value, update_count)`` snapshots of
        this cache's stored copies plus the feedback controller's learned
        threshold for the source.  The truth views are untouched -- the
        logical cached copy does not change by moving, so divergence
        accounting through a *warm* handoff is exact (contrast the crash
        path, which reverts truth to the initial values because the copy
        really is lost).
        """
        store = self.store
        if store is None:
            items = []
        else:
            items = [(int(i), float(store.values[i]),
                      int(store.applied_counts[i]))
                     for i in object_indices]
        threshold = float("inf")
        if self.feedback is not None:
            threshold = self.feedback.remove_source(source_id)
        return items, threshold

    def _apply_migration(self, message: MigrateMessage, now: float) -> None:
        """Recipient side: adopt the snapshots and (if primary) the source.

        Each item lands in the store only when at least as fresh as what
        is already there: refreshes over the re-routed source link may
        have raced ahead of the migration payload on the peer link, and
        regressing ``applied_count`` would resurrect a stale copy.  Truth
        views are never touched -- see :meth:`export_source`.

        A single-item message whose source is *not* homed here is a
        replica seed: it updates the store copy but leaves the feedback
        table alone (the primary cache runs the protocol).
        """
        store = self.store
        if store is not None:
            counts = store.applied_counts
            for object_index, value, update_count in message.items:
                if update_count >= counts[object_index]:
                    store.apply(object_index, value, now,
                                update_count=update_count)
        if self.topology.primary_cache_of(message.source_id) \
                == self.cache_id:
            self.migrations_in += 1
            if self.feedback is not None:
                self.feedback.add_source(message.source_id,
                                         message.threshold)
        else:
            self.seeds_in += 1

    def _is_stale(self, obj: DataObject, update_count: int) -> bool:
        """True when a fresher snapshot of ``obj`` was already applied.

        On one FIFO link snapshots arrive in order, so this never triggers
        in a star.  With replication, a congested replica link can deliver
        an *older* snapshot after a faster replica applied a newer one;
        re-applying it would regress the shared truth view and inject
        phantom divergence into the measurement.  The logical cached copy
        is the freshest replica, so late stale copies are discarded (and
        counted, since they did consume bandwidth).
        """
        if update_count < obj.truth.reference_count:
            self.stale_discards += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def on_crash(self, now: float) -> None:
        """Cold-restart this cache node (fault injection).

        Everything *learned* is lost -- the feedback controller's
        threshold records and the store's applied snapshots -- while the
        measurement machinery stays exact: each solely-cached object's
        truth view reverts to its initial (count-0) value *as a
        divergence event at* ``now``, because the cached copy really did
        jump back to the seed value the restarted process re-primes
        from.  Replicated objects are left alone: their logical cached
        copy is the freshest *surviving* replica, and per-replica
        crash accounting is out of scope for the fault model (E12 runs
        star and sharded layouts only).
        """
        self.crashes += 1
        if self.feedback is not None:
            self.feedback.reset()
        if self.store is not None:
            initial = self.store.initial_values
            topology = self.topology
            # replicated sources excluded: surviving replicas keep the copy
            mine = {source_id
                    for source_id in topology.sources_of(self.cache_id)
                    if len(topology.caches_of(source_id)) == 1}
            for obj in self.objects:
                if obj.source_id not in mine:
                    continue
                obj.apply_refresh(now, float(initial[obj.index]), 0,
                                  self.metric)
                if self.collector is not None:
                    self.collector.record(obj.index, now,
                                          obj.truth.divergence)
            self.store.reset()
        if self.activity_hook is not None:
            # A parked event-mode cache must wake: the restart re-created
            # feedback work (every threshold is unknown-infinite again).
            self.activity_hook(now)

    # ------------------------------------------------------------------
    # Per-tick work (CACHE phase)
    # ------------------------------------------------------------------
    def on_tick(self, now: float) -> None:
        """Second drain of this node's cache link, then feedback from surplus.

        Messages sources sent earlier in this same tick can still transmit
        with the remaining credit; only credit left over *after* that is
        genuine surplus available for positive feedback.
        """
        self.topology.drain_cache(self.cache_id)
        if self.feedback is not None:
            self.feedback.on_tick(now)
