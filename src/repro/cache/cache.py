"""The cache node: applies refreshes, records thresholds, runs feedback.

The cache is deliberately thin (the paper's point is that the *sources*
carry the scheduling intelligence): it applies whatever refreshes arrive,
tracks piggybacked thresholds, and spends surplus bandwidth on positive
feedback.  For the cache-driven baselines a poll handler can be registered
to receive :class:`PollResponse` messages.
"""

from __future__ import annotations

from typing import Callable

from repro.cache.feedback import FeedbackController
from repro.cache.store import CacheStore
from repro.core.divergence import DivergenceMetric
from repro.core.objects import DataObject
from repro.metrics.collector import DivergenceCollector
from repro.network.messages import (
    BatchRefreshMessage,
    Message,
    PollResponse,
    RefreshMessage,
)
from repro.network.topology import StarTopology


class CacheNode:
    """Receives messages on the shared cache link and applies refreshes."""

    def __init__(self, objects: list[DataObject], metric: DivergenceMetric,
                 topology: StarTopology,
                 collector: DivergenceCollector | None = None,
                 store: CacheStore | None = None,
                 feedback: FeedbackController | None = None,
                 clock: Callable[[], float] = lambda: 0.0) -> None:
        self.objects = objects
        self.metric = metric
        self.topology = topology
        self.collector = collector
        self.store = store
        self.feedback = feedback
        self.clock = clock
        self.refreshes_applied = 0
        self.poll_responses = 0
        self._poll_handler: Callable[[PollResponse, float], None] | None = None
        self.refresh_hooks: list[Callable[[DataObject, float], None]] = []
        topology.set_cache_receiver(self.on_message)

    def set_poll_handler(
            self, handler: Callable[[PollResponse, float], None]) -> None:
        self._poll_handler = handler

    def add_refresh_hook(
            self, hook: Callable[[DataObject, float], None]) -> None:
        """Register a callback invoked after each refresh is applied."""
        self.refresh_hooks.append(hook)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        now = self.clock()
        if isinstance(message, RefreshMessage):
            self._apply_refresh(message, now)
        elif isinstance(message, BatchRefreshMessage):
            self._apply_batch(message, now)
        elif isinstance(message, PollResponse):
            self.poll_responses += 1
            if self._poll_handler is not None:
                self._poll_handler(message, now)

    def _apply_refresh(self, message: RefreshMessage, now: float) -> None:
        obj = self.objects[message.object_index]
        obj.apply_refresh(now, message.value, message.update_count,
                          self.metric)
        if self.collector is not None:
            self.collector.record(obj.index, now, obj.truth.divergence)
        if self.store is not None:
            self.store.apply(obj.index, message.value, now)
        if self.feedback is not None:
            self.feedback.observe_threshold(message.source_id,
                                            message.threshold)
        self.refreshes_applied += 1
        for hook in self.refresh_hooks:
            hook(obj, now)

    def _apply_batch(self, message: BatchRefreshMessage,
                     now: float) -> None:
        """Apply each packaged item of a Sec 10.1 batch refresh."""
        for object_index, value, update_count in message.items:
            obj = self.objects[object_index]
            obj.apply_refresh(now, value, update_count, self.metric)
            if self.collector is not None:
                self.collector.record(obj.index, now,
                                      obj.truth.divergence)
            if self.store is not None:
                self.store.apply(obj.index, value, now)
            self.refreshes_applied += 1
            for hook in self.refresh_hooks:
                hook(obj, now)
        if self.feedback is not None:
            self.feedback.observe_threshold(message.source_id,
                                            message.threshold)

    # ------------------------------------------------------------------
    # Per-tick work (CACHE phase)
    # ------------------------------------------------------------------
    def on_tick(self, now: float) -> None:
        """Second drain of the cache link, then feedback from surplus.

        Messages sources sent earlier in this same tick can still transmit
        with the remaining credit; only credit left over *after* that is
        genuine surplus available for positive feedback.
        """
        self.topology.cache_link.drain()
        if self.feedback is not None:
            self.feedback.on_tick(now)
