"""Replicated read model: which replica answers a client read.

The paper's divergence metric is time-averaged over *the* cache copy.  With
a replicated :class:`~repro.network.topology.MultiCacheTopology` there is no
single copy any more: each replica's :class:`~repro.cache.store.CacheStore`
holds whatever snapshots its own (possibly congested) link has delivered,
so which replica answers a read decides the divergence the client actually
observes.  The :class:`ReadModel` exposes the three classic read-side
policies over the per-replica stores:

* **any-replica** -- a uniformly random replica answers; the cheapest read,
  and the one that exposes the full replica-staleness spread;
* **freshest-replica** -- consult every replica, answer from the freshest
  snapshot (the logical cached copy the shared truth view tracks);
* **quorum(k)** -- consult ``k`` randomly chosen replicas and answer from
  the freshest among them.  ``quorum(1)`` *is* any-replica and
  ``quorum(r)`` *is* freshest-replica, so one mechanism spans the whole
  read-cost/staleness trade-off.

Snapshot freshness is the store's ``(refresh_time, applied_count)`` pair
(see :mod:`repro.cache.store`); ties across replicas resolve to the lowest
cache id, keeping every read deterministic given the subset drawn.

**Quorum nesting.**  Each read draws one replica *permutation* from the
model's rng and quorum(k) consults its first ``k`` entries, so for a fixed
rng stream the consulted sets are nested in ``k``: a quorum(k+1) read sees
a superset of the snapshots the quorum(k) read saw and therefore answers
with an equally-fresh-or-fresher snapshot.  That is what makes quorum-k
read-observed *staleness* monotone in ``k`` read-by-read (and divergence
monotone in aggregate) when experiments sweep ``k`` on one seed.

With one cache the model degenerates to the star's ``CacheStore.read``:
every policy consults the single store and returns exactly its value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cache.store import CacheStore
from repro.network.topology import Topology

#: Read-policy names understood by :func:`parse_read_policy`.
READ_POLICIES = ("any", "freshest", "quorum")


def parse_read_policy(name: str) -> tuple[str, int]:
    """Parse ``"any"`` / ``"freshest"`` / ``"quorum-k"`` into ``(kind, k)``.

    ``k`` is 0 for the non-quorum policies (any consults 1 replica,
    freshest consults all; neither takes a parameter).
    """
    if name == "any":
        return ("any", 0)
    if name == "freshest":
        return ("freshest", 0)
    if name.startswith("quorum-"):
        try:
            k = int(name[len("quorum-"):])
        except ValueError:
            raise ValueError(f"bad quorum size in read policy {name!r}")
        if k < 1:
            raise ValueError(f"quorum size must be >= 1, got {k}")
        return ("quorum", k)
    raise ValueError(
        f"unknown read policy {name!r}; expected 'any', 'freshest' "
        f"or 'quorum-k'")


@dataclass(frozen=True)
class ReadSample:
    """Outcome of one client read."""

    value: float  #: the answered (possibly stale) cached value
    cache_id: int  #: replica that supplied the answer
    refresh_time: float  #: when that replica last refreshed the object
    applied_count: int  #: update counter of the answered snapshot
    consulted: int  #: replicas consulted to serve this read


class ReadModel:
    """Policy-parameterized reads over the per-replica cache stores.

    Parameters
    ----------
    stores:
        One :class:`CacheStore` per cache node, indexed by cache id --
        exactly the list a policy builds in :meth:`attach` (e.g.
        ``CooperativePolicy.stores``).
    topology:
        The run's topology; supplies the replica set per source.
    owner:
        Owning source of every global object index
        (:attr:`repro.workloads.synthetic.Workload.owner`).
    rng:
        Generator for replica-subset draws.  Runs that sweep quorum sizes
        on one seed share the permutation stream, which makes consulted
        sets nested in ``k`` (see the module docstring).  ``None`` is
        allowed when only deterministic reads (``freshest``) are issued.
    """

    def __init__(self, stores: Sequence[CacheStore], topology: Topology,
                 owner: np.ndarray,
                 rng: np.random.Generator | None = None) -> None:
        if len(stores) != topology.num_caches:
            raise ValueError(
                f"got {len(stores)} stores for {topology.num_caches} "
                f"caches")
        self.stores = list(stores)
        self.topology = topology
        self.rng = rng
        #: replica cache ids per object, resolved once from the topology
        self.replicas: list[tuple[int, ...]] = \
            topology.object_replicas(owner)
        # Single-replica layouts (one cache, or sharded with no fan-out)
        # never draw from the rng and always answer from the object's home
        # cache, so batched reads can skip the per-read dispatch entirely.
        self._single_replica = all(
            len(replicas) == 1 for replicas in self.replicas)
        self._home = np.array([replicas[0] for replicas in self.replicas],
                              dtype=np.int64)

    def replicas_of(self, index: int) -> tuple[int, ...]:
        """Cache ids holding a copy of object ``index``."""
        return self.replicas[index]

    # ------------------------------------------------------------------
    # Read policies
    # ------------------------------------------------------------------
    def read(self, index: int, policy: str = "any",
             quorum_size: int = 0) -> ReadSample:
        """Serve one read under a named policy (see the module docstring)."""
        kind, k = parse_read_policy(policy)
        if kind == "any":
            return self.any_replica(index)
        if kind == "freshest":
            return self.freshest_replica(index)
        return self.quorum(index, quorum_size or k)

    def read_batch(self, indices: np.ndarray, policy: str = "any",
                   quorum_size: int = 0
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Serve many reads under one policy; returns answered
        ``(values, cache_ids)`` arrays aligned with ``indices``.

        Bit-for-bit the same answers (and the same rng consumption) as a
        loop over :meth:`read`: quorum subset draws are inherently
        sequential, so replicated layouts loop read-by-read, while
        single-replica layouts (one cache, or sharded without fan-out)
        vectorize to plain store lookups -- there is exactly one candidate
        and no draw.  The batched read replay path feeds these arrays
        straight into :meth:`ReadCollector.record_many
        <repro.metrics.collector.ReadCollector.record_many>`.
        """
        kind, k = parse_read_policy(policy)
        if kind == "quorum":
            k = quorum_size or k
        indices = np.asarray(indices, dtype=np.int64)
        n = len(indices)
        values = np.empty(n)
        cache_ids = np.empty(n, dtype=np.int64)
        if self._single_replica and (kind != "quorum" or k == 1):
            homes = self._home[indices]
            for cache_id in np.unique(homes).tolist():
                mask = homes == cache_id
                values[mask] = self.stores[cache_id].values[indices[mask]]
            cache_ids[:] = homes
            return values, cache_ids
        if kind == "any":
            read = self.any_replica
        elif kind == "freshest":
            read = self.freshest_replica
        else:
            def read(index: int) -> ReadSample:
                return self.quorum(index, k)
        for pos, index in enumerate(indices.tolist()):
            sample = read(index)
            values[pos] = sample.value
            cache_ids[pos] = sample.cache_id
        return values, cache_ids

    def any_replica(self, index: int) -> ReadSample:
        """Answer from one uniformly random replica (= quorum(1))."""
        return self.quorum(index, 1)

    def freshest_replica(self, index: int) -> ReadSample:
        """Answer from the freshest replica snapshot; deterministic, no
        rng draw (unlike ``quorum(r)``, which consumes a permutation to
        stay aligned with smaller quorums on the same stream)."""
        return self._freshest(index, self.replicas[index])

    def quorum(self, index: int, k: int) -> ReadSample:
        """Answer from the freshest of ``k`` randomly drawn replicas.

        The draw is the first ``k`` entries of one full replica
        permutation, so quorums of different sizes on the same rng stream
        consult nested sets.
        """
        replicas = self.replicas[index]
        if not 1 <= k <= len(replicas):
            raise ValueError(
                f"quorum size must be in [1, {len(replicas)}] for object "
                f"{index}, got {k}")
        if len(replicas) == 1:
            # Single replica: nothing to draw.  Keeping the rng untouched
            # here is what makes the one-cache read path bit-for-bit the
            # star's CacheStore.read baseline.
            return self._freshest(index, replicas)
        if self.rng is None:
            raise ValueError("quorum reads need an rng for subset draws")
        perm = self.rng.permutation(len(replicas))
        chosen = tuple(replicas[p] for p in perm[:k])
        return self._freshest(index, chosen)

    def _freshest(self, index: int,
                  candidates: Sequence[int]) -> ReadSample:
        best = -1
        best_key = (float("-inf"), -1)
        for cache_id in candidates:
            store = self.stores[cache_id]
            key = (float(store.refresh_times[index]),
                   int(store.applied_counts[index]))
            # Strict > keeps the lowest cache id on full ties only when
            # candidates are scanned in id order; with a permuted subset
            # the id must join the comparison explicitly.
            if best < 0 or key > best_key or (key == best_key
                                              and cache_id < best):
                best = cache_id
                best_key = key
        store = self.stores[best]
        return ReadSample(value=float(store.values[index]),
                          cache_id=best,
                          refresh_time=best_key[0],
                          applied_count=best_key[1],
                          consulted=len(candidates))
