"""The cache's positive-feedback controller (paper Sec 5).

"The cache continually monitors cache-side bandwidth utilization.  If
underutilized, the cache uses the excess bandwidth to send positive
feedback messages to as many sources as possible (until the excess
bandwidth is utilized), asking them each to decrease their thresholds by a
multiplicative factor omega.  If it is not possible to provide feedback to
every source, the sources with the highest local thresholds are selected to
receive feedback."

The controller learns source thresholds from the values piggybacked on
refresh messages.  Sources it has never heard from are treated as having an
infinite threshold, which bootstraps the protocol: silent sources are the
first to receive feedback.  After sending feedback the controller
optimistically applies the protocol's ``/ omega`` to its local record, so
repeated surplus ticks spread feedback across sources instead of hammering
the same one.

In a multi-cache topology each cache node runs its own controller over the
sources for which it is the *primary* cache, spending only its own link's
surplus; feedback messages are addressed by ``(cache_id, source_id)``.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.network.topology import Topology


class FeedbackController:
    """Selects feedback targets and spends surplus cache bandwidth.

    ``min_threshold`` prevents waste in bandwidth-rich regimes: a source
    whose piggybacked threshold is already at the numerical floor refreshes
    everything it has, so further feedback cannot increase the refresh rate
    and would only burn capacity.  Because the controller optimistically
    divides its local record by ``omega`` after each feedback, a silent
    source stops receiving feedback after a few rounds until fresh
    piggybacked evidence arrives.

    ``source_ids`` restricts the controller to the sources this cache is
    responsible for (``None`` means every source in the topology);
    ``known_thresholds`` is indexed in step with that tuple.

    ``gains``, aligned with ``source_ids``, weights the ranking by how
    much divergence one refresh from that source removes (the delivery
    plane's :meth:`~repro.network.delivery.DeliveryPlane.feedback_gain`:
    under multicast a source replicated ``r`` ways freshens ``r``
    replicas per unit of upstream bandwidth, so its threshold counts
    ``r`` times heavier when choosing whom to ask for more refreshes).
    ``None`` keeps the paper's unweighted ranking and leaves the
    selection arithmetic untouched -- the unicast path stays bitwise
    identical.  Gains only reorder *selection* under scarcity; recorded
    thresholds and the ``/ omega`` decay always use raw values.
    """

    def __init__(self, topology: Topology, omega: float,
                 max_per_tick: int | None = None,
                 min_threshold: float = 1e-11,
                 cache_id: int = 0,
                 source_ids: Sequence[int] | None = None,
                 gains: Sequence[float] | None = None) -> None:
        self.topology = topology
        self.omega = omega
        self.max_per_tick = max_per_tick
        self.min_threshold = min_threshold
        self.cache_id = cache_id
        if source_ids is None:
            source_ids = range(topology.num_sources)
        self.source_ids = tuple(source_ids)
        if gains is not None:
            gains = list(gains)
            if len(gains) != len(self.source_ids):
                raise ValueError(
                    f"gains lists {len(gains)} entries for "
                    f"{len(self.source_ids)} sources")
        self._gains: list[float] | None = gains
        self._position = {sid: pos for pos, sid in enumerate(self.source_ids)}
        # Permanent sid -> slot map: slots are never compacted, so a
        # source migrated away and back (see add/remove_source) reuses
        # its original slot instead of aliasing a second heap identity.
        self._slots = dict(self._position)
        self.known_thresholds = [float("inf")] * len(self.source_ids)
        self.feedback_sent = 0
        # Lazy max-heap over (threshold, source) so selecting the top
        # ``budget`` targets costs O(budget log m) instead of rebuilding an
        # O(m) candidate list every tick.  Entries are stamped with a
        # per-source version; stale entries are discarded on pop.
        self._versions = [0] * len(self.source_ids)
        self._heap: list[tuple[float, int, int]] = [
            (float("-inf"), sid, 0) for sid in self.source_ids
        ]
        heapq.heapify(self._heap)
        self._eligible = len(self.source_ids)

    def reset(self) -> None:
        """Cold restart: forget every learned threshold (crash recovery).

        All sources revert to the unknown-infinite state, exactly as at
        construction, which re-bootstraps the protocol: the recovered
        cache first pays feedback to everyone, then rebuilds its records
        from the thresholds piggybacked on the refreshes that triggers.
        Versions keep advancing (never reset) so heap entries drained
        before the crash stay stale.
        """
        live = self._position
        self.known_thresholds = [
            float("inf") if sid in live else self.min_threshold
            for sid in self.source_ids]
        self._versions = [v + 1 for v in self._versions]
        self._heap = [(float("-inf"), sid, self._versions[pos])
                      for pos, sid in enumerate(self.source_ids)
                      if sid in live]
        heapq.heapify(self._heap)
        self._eligible = len(live)

    def remove_source(self, source_id: int) -> float:
        """Forget one migrated-away source; returns its learned threshold.

        The slot is parked, not compacted: the recorded threshold drops
        to the floor (fixing the eligible count and invalidating live
        heap entries via the version bump) and the source leaves the
        live ``_position`` map, so late refreshes that were still in
        flight to this cache can no longer resurrect it through
        :meth:`observe_threshold`.  The returned threshold travels with
        the migration so the recipient skips the infinite bootstrap.
        """
        position = self._position.get(source_id)
        if position is None:
            raise ValueError(
                f"source {source_id} is not owned by cache {self.cache_id}")
        threshold = self.known_thresholds[position]
        self._set_threshold(position, self.min_threshold)
        del self._position[source_id]
        return threshold

    def add_source(self, source_id: int,
                   threshold: float = float("inf")) -> None:
        """Adopt a migrated-in source, seeding its learned threshold.

        A source this controller has seen before (migrated away and
        back) reuses its original slot; a brand-new one is appended.
        Already-live sources just observe the threshold.
        """
        position = self._position.get(source_id)
        if position is not None:
            self._set_threshold(position, threshold)
            return
        position = self._slots.get(source_id)
        if position is None:
            position = len(self.known_thresholds)
            self._slots[source_id] = position
            self.source_ids = self.source_ids + (source_id,)
            # Seed the new slot at the floor (ineligible) so the
            # _set_threshold below accounts the eligibility delta.
            self.known_thresholds.append(self.min_threshold)
            self._versions.append(0)
            if self._gains is not None:
                # Migrations only move sharded (unreplicated) sources,
                # whose refresh gain is 1 under every delivery plane.
                self._gains.append(1.0)
        self._position[source_id] = position
        self._set_threshold(position, threshold)

    def observe_threshold(self, source_id: int, threshold: float) -> None:
        """Record a threshold piggybacked on a refresh message."""
        position = self._position.get(source_id)
        if position is not None:
            self._set_threshold(position, threshold)

    def _set_threshold(self, position: int, threshold: float) -> None:
        old = self.known_thresholds[position]
        self.known_thresholds[position] = threshold
        self._eligible += ((threshold > self.min_threshold)
                           - (old > self.min_threshold))
        self._versions[position] += 1
        if threshold > self.min_threshold:
            # Heap keys carry the gain; eligibility and the push condition
            # use the raw threshold, so a gained entry can never outlive
            # its source's eligibility (version bumps invalidate anyway).
            gains = self._gains
            if gains is not None:
                threshold = threshold * gains[position]
            heapq.heappush(self._heap, (-threshold,
                                        self.source_ids[position],
                                        self._versions[position]))

    def has_targets(self) -> bool:
        """True while at least one source could usefully receive feedback.

        Lets an event-driven cache park its per-tick wakeup once every
        known threshold has decayed to the floor and the queue is empty.
        """
        return self._eligible > 0

    def on_tick(self, now: float) -> None:
        """Spend any surplus credit of this cache's link on feedback.

        The whole target batch goes through one
        :meth:`Topology.send_downstream_batch` call -- one link accrue,
        one counter update, one reused message object -- instead of a
        per-target :class:`FeedbackMessage` allocation and ``send``.
        """
        surplus = self.topology.cache_surplus(self.cache_id, now)
        budget = int(surplus)
        if budget <= 0:
            return
        if self.max_per_tick is not None:
            budget = min(budget, self.max_per_tick)
        budget = min(budget, len(self.source_ids))
        targets, entries = self._select_targets(budget)
        delivered = self.topology.send_downstream_batch(
            self.cache_id, targets, now)
        self.feedback_sent += delivered
        for rank, source_id in enumerate(targets):
            position = self._position[source_id]
            if rank < delivered:
                # The protocol's optimistic ``/ omega``; its _set_threshold
                # pushes a fresh heap entry, superseding the drained one.
                # A still-infinite threshold has no entry to supersede, so
                # the drained entry goes back as is.
                known = self.known_thresholds[position]
                if known != float("inf"):
                    self._set_threshold(position, known / self.omega)
                elif entries is not None:
                    heapq.heappush(self._heap, entries[rank])
            elif entries is not None:
                # Out of credit before this target: nothing changed for it,
                # so its drained entry is restored untouched.
                heapq.heappush(self._heap, entries[rank])

    def _select_targets(self, budget: int
                        ) -> tuple[list[int],
                                   list[tuple[float, int, int]] | None]:
        """The ``budget`` eligible sources with the highest thresholds.

        When the budget covers every eligible source the selection is all
        of them in source-id order (entries ``None``: the heap was not
        touched); otherwise the lazy heap is *drained* into a local buffer
        -- top ``budget`` by (threshold desc, source id asc), the same
        total order a ``heapq.nlargest`` scan would produce -- and the
        popped entries are returned alongside so :meth:`on_tick` can
        restore exactly the ones that were not superseded.  Stale entries
        (version mismatch or decayed to the floor) are dropped permanently
        during the drain instead of being re-scanned every call.
        """
        if budget >= self._eligible:
            return ([source_id
                     for source_id, threshold in zip(self.source_ids,
                                                     self.known_thresholds)
                     if threshold > self.min_threshold], None)
        selected: list[int] = []
        popped: list[tuple[float, int, int]] = []
        heap = self._heap
        while heap and len(selected) < budget:
            entry = heapq.heappop(heap)
            neg_threshold, source_id, version = entry
            position = self._position.get(source_id)
            if (position is None
                    or version != self._versions[position]
                    or -neg_threshold <= self.min_threshold):
                # Stale, no longer eligible, or migrated away since the
                # entry was pushed: dropped for good.
                continue
            selected.append(source_id)
            popped.append(entry)
        return selected, popped
