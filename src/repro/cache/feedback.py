"""The cache's positive-feedback controller (paper Sec 5).

"The cache continually monitors cache-side bandwidth utilization.  If
underutilized, the cache uses the excess bandwidth to send positive
feedback messages to as many sources as possible (until the excess
bandwidth is utilized), asking them each to decrease their thresholds by a
multiplicative factor omega.  If it is not possible to provide feedback to
every source, the sources with the highest local thresholds are selected to
receive feedback."

The controller learns source thresholds from the values piggybacked on
refresh messages.  Sources it has never heard from are treated as having an
infinite threshold, which bootstraps the protocol: silent sources are the
first to receive feedback.  After sending feedback the controller
optimistically applies the protocol's ``/ omega`` to its local record, so
repeated surplus ticks spread feedback across sources instead of hammering
the same one.

In a multi-cache topology each cache node runs its own controller over the
sources for which it is the *primary* cache, spending only its own link's
surplus; feedback messages are addressed by ``(cache_id, source_id)``.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.network.messages import FeedbackMessage
from repro.network.topology import Topology


class FeedbackController:
    """Selects feedback targets and spends surplus cache bandwidth.

    ``min_threshold`` prevents waste in bandwidth-rich regimes: a source
    whose piggybacked threshold is already at the numerical floor refreshes
    everything it has, so further feedback cannot increase the refresh rate
    and would only burn capacity.  Because the controller optimistically
    divides its local record by ``omega`` after each feedback, a silent
    source stops receiving feedback after a few rounds until fresh
    piggybacked evidence arrives.

    ``source_ids`` restricts the controller to the sources this cache is
    responsible for (``None`` means every source in the topology);
    ``known_thresholds`` is indexed in step with that tuple.
    """

    def __init__(self, topology: Topology, omega: float,
                 max_per_tick: int | None = None,
                 min_threshold: float = 1e-11,
                 cache_id: int = 0,
                 source_ids: Sequence[int] | None = None) -> None:
        self.topology = topology
        self.omega = omega
        self.max_per_tick = max_per_tick
        self.min_threshold = min_threshold
        self.cache_id = cache_id
        if source_ids is None:
            source_ids = range(topology.num_sources)
        self.source_ids = tuple(source_ids)
        self._position = {sid: pos for pos, sid in enumerate(self.source_ids)}
        self.known_thresholds = [float("inf")] * len(self.source_ids)
        self.feedback_sent = 0

    def observe_threshold(self, source_id: int, threshold: float) -> None:
        """Record a threshold piggybacked on a refresh message."""
        position = self._position.get(source_id)
        if position is not None:
            self.known_thresholds[position] = threshold

    def on_tick(self, now: float) -> None:
        """Spend any surplus credit of this cache's link on feedback."""
        surplus = self.topology.cache_surplus(self.cache_id)
        budget = int(surplus)
        if budget <= 0:
            return
        if self.max_per_tick is not None:
            budget = min(budget, self.max_per_tick)
        budget = min(budget, len(self.source_ids))
        targets = self._select_targets(budget)
        for source_id in targets:
            message = FeedbackMessage(source_id=source_id, sent_at=now,
                                      cache_id=self.cache_id)
            if not self.topology.send_downstream(message):
                break
            self.feedback_sent += 1
            position = self._position[source_id]
            known = self.known_thresholds[position]
            if known != float("inf"):
                self.known_thresholds[position] = known / self.omega

    def _select_targets(self, budget: int) -> list[int]:
        """The ``budget`` eligible sources with the highest thresholds."""
        candidates = [
            (source_id, threshold)
            for source_id, threshold in zip(self.source_ids,
                                            self.known_thresholds)
            if threshold > self.min_threshold
        ]
        if budget >= len(candidates):
            return [source_id for source_id, _ in candidates]
        top = heapq.nlargest(budget, candidates,
                             key=lambda kv: (kv[1], -kv[0]))
        return [source_id for source_id, _ in top]
