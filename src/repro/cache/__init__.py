"""Cache-side machinery: store, refresh application, feedback controller."""

from repro.cache.cache import CacheNode
from repro.cache.feedback import FeedbackController
from repro.cache.store import CacheStore

__all__ = [
    "CacheNode",
    "CacheStore",
    "FeedbackController",
]
