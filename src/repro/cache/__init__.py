"""Cache-side machinery: store, refresh application, feedback, read model."""

from repro.cache.cache import CacheNode
from repro.cache.feedback import FeedbackController
from repro.cache.readmodel import (
    READ_POLICIES,
    ReadModel,
    ReadSample,
    parse_read_policy,
)
from repro.cache.store import CacheStore

__all__ = [
    "CacheNode",
    "CacheStore",
    "FeedbackController",
    "READ_POLICIES",
    "ReadModel",
    "ReadSample",
    "parse_read_policy",
]
