"""repro: reproduction of Olston & Widom, "Best-Effort Cache Synchronization
with Source Cooperation" (SIGMOD 2002).

Public API highlights:

* :mod:`repro.core` -- divergence metrics, weights, refresh priority
  functions, the adaptive threshold controller.
* :mod:`repro.policies` -- runnable policies: the paper's cooperative
  algorithm, the idealized scheduler, and the CGM cache-driven baselines.
* :mod:`repro.workloads` -- synthetic and buoy workload generation with
  replayable update traces.
* :mod:`repro.experiments` -- configuration and runners for every
  experiment in the paper's evaluation section.

Quickstart::

    import numpy as np
    from repro.core import Staleness, PoissonStalenessPriority
    from repro.network import ConstantBandwidth
    from repro.policies import CooperativePolicy
    from repro.experiments import RunSpec, run_policy
    from repro.workloads import uniform_random_walk

    rng = np.random.default_rng(0)
    workload = uniform_random_walk(num_sources=10, objects_per_source=10,
                                   horizon=300.0, rng=rng)
    policy = CooperativePolicy(
        cache_bandwidth=ConstantBandwidth(20.0),
        source_bandwidths=[ConstantBandwidth(10.0)] * 10,
        priority_fn=PoissonStalenessPriority())
    result = run_policy(workload, Staleness(), policy,
                        RunSpec(warmup=50.0, measure=250.0))
    print(result.unweighted_divergence)
"""

__version__ = "1.0.0"
